"""The shard router: consistent hashing, redelivery, degraded floor.

:class:`ShardRouter` is the process-spanning counterpart of
:class:`repro.serve.server.Server`: the same ``submit() ->
Future[Response]`` contract, but requests are consistent-hashed by
their *shape-specialization key* (workload, pipeline, platform, input
shapes — exactly the things that select one compiled artifact) onto N
supervised worker processes.  Keying the ring on the specialization
key means every request that would share a compiled program and a
batch lands on the same worker, so process sharding never splits a
batchable population.

Crash handling is the router's whole reason to exist:

* the :class:`~repro.shard.supervisor.Supervisor` reports each worker
  death; the dead worker leaves the hash ring and its in-flight
  requests are **redelivered** to the surviving ring — at most
  ``redeliver_max`` times per request, after which the caller gets a
  typed :class:`~repro.errors.WorkerCrashed` response instead of a
  hang;
* redelivery is **at-most-once** on the answer side: request ids are
  stable across redeliveries, the first RESULT wins, later duplicates
  are counted and dropped, and a redelivered request that actually
  completed on the dead worker's successor incarnation is answered
  from its replay cache (``duplicate=True``), never executed twice;
* when every worker is down (respawn budget exhausted) the router
  degrades to an **in-process eager floor** — answers stay correct and
  available, just slower and marked ``degraded``.
"""

from __future__ import annotations

import bisect
import hashlib
import itertools
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..models import Workload, get_workload
from ..obs import trace as obs_trace
from ..runtime.tensor import Tensor
from ..serve.request import (Response, STATUS_CANCELLED, STATUS_ERROR,
                             STATUS_OK)
from .ipc import MSG_RESULT, MSG_SUBMIT, decode_args, encode_args
from .supervisor import Supervisor, WorkerHandle

__all__ = ["HashRing", "RouterStats", "ShardPolicy", "ShardRouter"]


class HashRing:
    """Consistent hash ring with virtual nodes.

    Each node owns ``virtual_nodes`` points on a sha256 ring; a key
    routes to the first node point at or after its own hash.  Removing
    a node moves only that node's keys (the property that makes
    crash-reroute cheap: the surviving workers keep their artifact
    working sets).
    """

    def __init__(self, nodes=(), virtual_nodes: int = 64) -> None:
        if virtual_nodes < 1:
            raise ValueError("virtual_nodes must be >= 1")
        self.virtual_nodes = virtual_nodes
        self._lock = threading.Lock()
        self._points: List[Tuple[int, str]] = []
        self._nodes: set = set()
        for node in nodes:
            self.add(node)

    @staticmethod
    def _hash(text: str) -> int:
        return int.from_bytes(
            hashlib.sha256(text.encode("utf-8")).digest()[:8], "big")

    def add(self, node: str) -> None:
        """Insert a node's virtual points (idempotent)."""
        with self._lock:
            if node in self._nodes:
                return
            self._nodes.add(node)
            for v in range(self.virtual_nodes):
                bisect.insort(self._points,
                              (self._hash(f"{node}#{v}"), node))

    def remove(self, node: str) -> None:
        """Remove a node's virtual points (idempotent)."""
        with self._lock:
            if node not in self._nodes:
                return
            self._nodes.discard(node)
            self._points = [p for p in self._points if p[1] != node]

    def lookup(self, key: str) -> Optional[str]:
        """The node owning ``key``; None when the ring is empty."""
        with self._lock:
            if not self._points:
                return None
            h = self._hash(key)
            idx = bisect.bisect_right(self._points, (h, "￿"))
            if idx == len(self._points):
                idx = 0
            return self._points[idx][1]

    @property
    def nodes(self) -> List[str]:
        """Current member nodes, sorted."""
        with self._lock:
            return sorted(self._nodes)

    def __len__(self) -> int:
        with self._lock:
            return len(self._nodes)


@dataclass(frozen=True)
class ShardPolicy:
    """All tunables of the sharded serving layer."""

    #: worker processes on the hash ring
    num_workers: int = 2
    #: worker heartbeat beacon period (seconds)
    heartbeat_interval_s: float = 0.1
    #: beacon silence beyond this declares a ready worker hung
    heartbeat_timeout_s: float = 1.0
    #: how long a spawned worker may take to dial back with HELLO
    ready_timeout_s: float = 60.0
    #: per-slot respawn budget; an exhausted slot is retired for good
    max_respawns: int = 2
    #: per-request redelivery budget after worker deaths; exceeded =>
    #: a typed WorkerCrashed error response (never a hang)
    redeliver_max: int = 2
    #: respawn backoff: jittered exponential, seeded
    respawn_base_delay_s: float = 0.05
    respawn_max_delay_s: float = 1.0
    respawn_jitter: float = 0.5
    #: default per-request deadline passed through to workers
    request_timeout_s: float = 30.0
    #: serve requests in-process with the eager pipeline when every
    #: worker is down (the availability floor); False fails them typed
    eager_floor: bool = True
    #: artifact store directory shared by all workers (None = each
    #: worker compiles cold and publishes nothing)
    store_root: Optional[str] = None
    #: ServePolicy kwargs for each worker's inner server
    worker_policy: Optional[dict] = None
    #: FaultPlan.to_spec() dict shipped to every worker (chaos drills)
    fault_spec: Optional[dict] = None
    #: highest per-slot incarnation that still runs the fault plan
    #: (1 = only the first; respawned workers come back healthy)
    fault_max_incarnations: int = 1
    #: virtual nodes per worker on the hash ring
    virtual_nodes: int = 64
    #: seed for respawn-backoff jitter
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if self.heartbeat_interval_s <= 0:
            raise ValueError("heartbeat_interval_s must be > 0")
        if self.heartbeat_timeout_s <= self.heartbeat_interval_s:
            raise ValueError("heartbeat_timeout_s must exceed "
                             "heartbeat_interval_s")
        if self.max_respawns < 0:
            raise ValueError("max_respawns must be >= 0")
        if self.redeliver_max < 0:
            raise ValueError("redeliver_max must be >= 0")
        if self.virtual_nodes < 1:
            raise ValueError("virtual_nodes must be >= 1")


class RouterStats:
    """Thread-safe counters for the router's crash-handling paths."""

    _FIELDS = ("submitted", "answered", "ok", "errors", "redelivered",
               "duplicates_dropped", "replayed", "eager_floor",
               "parked", "crash_failures")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts: Dict[str, int] = {f: 0 for f in self._FIELDS}
        #: latest compile-event count each worker reported (the
        #: warm-restart "zero cold compiles" witness)
        self.worker_compiles: Dict[str, int] = {}
        #: warm-start artifact counts from worker HELLOs, by
        #: (worker_id, generation)
        self.worker_warmed: Dict[str, int] = {}

    def inc(self, name: str, by: int = 1) -> None:
        """Bump one counter."""
        with self._lock:
            self._counts[name] = self._counts.get(name, 0) + by

    def get(self, name: str) -> int:
        """Read one counter."""
        with self._lock:
            return self._counts.get(name, 0)

    def to_dict(self) -> Dict[str, object]:
        """Snapshot of every counter plus per-worker reports."""
        with self._lock:
            out: Dict[str, object] = dict(self._counts)
            out["worker_compiles"] = dict(self.worker_compiles)
            out["worker_warmed"] = dict(self.worker_warmed)
            return out


@dataclass
class _Inflight:
    """Router-side record of one not-yet-answered request."""

    rid: int
    workload: str
    pipeline: str
    platform: str
    args_wire: list
    ring_key: str
    future: "Future[Response]"
    priority: int = 0
    tenant: str = "default"
    timeout_s: Optional[float] = None
    worker: str = ""
    generation: int = 0
    redelivered: int = 0
    submitted_at: float = field(default_factory=time.monotonic)


class ShardRouter:
    """Multi-process serving front door (see module docstring)."""

    def __init__(self, policy: Optional[ShardPolicy] = None) -> None:
        self.policy = policy or ShardPolicy()
        self.stats = RouterStats()
        self.ring = HashRing(virtual_nodes=self.policy.virtual_nodes)
        worker_cfg = {
            "store_root": self.policy.store_root,
            "policy": dict(self.policy.worker_policy or {}),
            "fault_spec": self.policy.fault_spec,
            "fault_max_incarnations": self.policy.fault_max_incarnations,
        }
        self.supervisor = Supervisor(
            num_workers=self.policy.num_workers,
            worker_cfg=worker_cfg,
            heartbeat_interval_s=self.policy.heartbeat_interval_s,
            heartbeat_timeout_s=self.policy.heartbeat_timeout_s,
            ready_timeout_s=self.policy.ready_timeout_s,
            max_respawns=self.policy.max_respawns,
            respawn_base_delay_s=self.policy.respawn_base_delay_s,
            respawn_max_delay_s=self.policy.respawn_max_delay_s,
            respawn_jitter=self.policy.respawn_jitter,
            seed=self.policy.seed)
        self.supervisor.on_message = self._on_message
        self.supervisor.on_ready = self._on_ready
        self.supervisor.on_death = self._on_death
        self.supervisor.on_retired = self._on_retired
        self._lock = threading.Lock()
        self._inflight: Dict[int, _Inflight] = {}
        self._parked: List[_Inflight] = []
        self._rids = itertools.count()
        self._closed = False
        self.supervisor.start()

    # -- context management --------------------------------------------

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(drain=exc_type is None)

    # -- readiness ------------------------------------------------------

    def wait_ready(self, min_workers: int = 1,
                   timeout: float = 60.0) -> int:
        """Block until ``min_workers`` are routable (or timeout);
        returns the ready count."""
        deadline = time.monotonic() + timeout
        while True:
            ready = len(self.ring)
            if ready >= min_workers or time.monotonic() >= deadline:
                return ready
            if not self.supervisor.handles():
                return ready  # every slot retired: nobody is coming
            time.sleep(0.02)

    # -- intake ---------------------------------------------------------

    @staticmethod
    def ring_key(workload: str, pipeline: str, platform: str,
                 args: tuple) -> str:
        """The shape-specialization key a request hashes on: every
        request sharing it shares one compiled artifact and one batch
        population, so they must share one worker."""
        sig = tuple(tuple(a.shape) if isinstance(a, Tensor) else repr(a)
                    for a in args)
        return f"{workload}/{pipeline}/{platform}/{sig}"

    def submit(self, workload: Union[str, Workload], args: tuple = None,
               *, pipeline: str = "tensorssa",
               platform: str = "datacenter", batch_size: int = 1,
               seq_len: int = 64, seed: int = 0,
               timeout_s: Optional[float] = None, priority: int = 0,
               tenant: str = "default") -> "Future[Response]":
        """Enqueue one request; same contract as
        :meth:`repro.serve.server.Server.submit`."""
        wl = get_workload(workload) if isinstance(workload, str) \
            else workload
        if args is None:
            args = wl.make_inputs(batch_size=batch_size, seq_len=seq_len,
                                  seed=seed)
        budget = self.policy.request_timeout_s if timeout_s is None \
            else timeout_s
        rec = _Inflight(
            rid=next(self._rids), workload=wl.name, pipeline=pipeline,
            platform=platform, args_wire=encode_args(tuple(args)),
            ring_key=self.ring_key(wl.name, pipeline, platform,
                                   tuple(args)),
            future=Future(), priority=priority, tenant=tenant,
            timeout_s=budget if budget and budget > 0 else None)
        self.stats.inc("submitted")
        with self._lock:
            if self._closed:
                rec.future.set_result(self._typed_error(
                    rec, STATUS_CANCELLED,
                    "ServerShutdown: router is shut down"))
                return rec.future
            self._inflight[rec.rid] = rec
        self._dispatch(rec)
        return rec.future

    # -- dispatch & redelivery ------------------------------------------

    def _dispatch(self, rec: _Inflight) -> None:
        """Route one in-flight record: hash ring first, then the
        parked queue (workers respawning), then the eager floor."""
        with obs_trace.span("shard:route", cat="shard",
                            key=rec.ring_key,
                            redelivered=rec.redelivered):
            node = self.ring.lookup(rec.ring_key)
            if node is None:
                self._route_floor(rec)
                return
            handle = self.supervisor.get(node)
            if handle is None or not handle.alive:
                self._route_floor(rec)
                return
            rec.worker = handle.worker_id
            rec.generation = handle.generation
            payload = {"rid": rec.rid, "workload": rec.workload,
                       "pipeline": rec.pipeline,
                       "platform": rec.platform, "args": rec.args_wire,
                       "timeout_s": rec.timeout_s,
                       "priority": rec.priority, "tenant": rec.tenant,
                       "redelivered": rec.redelivered}
            try:
                with obs_trace.span("shard:ipc", cat="shard",
                                    worker=handle.worker_id,
                                    rid=rec.rid):
                    handle.channel.send(MSG_SUBMIT, payload)
            except ConnectionError:
                # the worker died under the send.  If its death is
                # already declared, the on_death redelivery sweep has
                # passed and this record must reroute itself; otherwise
                # it stays in flight, assigned, and rides the sweep —
                # retrying immediately would burn the whole redelivery
                # budget against the same corpse before the monitor
                # even removes it from the ring
                if handle.dead.is_set():
                    self._redeliver(rec, reason="send-failed")

    def _route_floor(self, rec: _Inflight) -> None:
        """No routable worker: park while respawns are pending, else
        degrade to the eager floor (or fail typed)."""
        if self.supervisor.handles():
            with self._lock:
                if not self._closed:
                    self._parked.append(rec)
                    self.stats.inc("parked")
                    return
        self._serve_eager_floor(rec)

    def _redeliver(self, rec: _Inflight, reason: str) -> None:
        """One delivery attempt died with the worker; try again on the
        surviving ring, bounded by ``redeliver_max``."""
        rec.redelivered += 1
        if rec.redelivered > self.policy.redeliver_max:
            with self._lock:
                self._inflight.pop(rec.rid, None)
            self.stats.inc("crash_failures")
            rec.future.set_result(self._typed_error(
                rec, STATUS_ERROR,
                f"WorkerCrashed: worker {rec.worker or '?'} died "
                f"({reason}); redelivery budget "
                f"({self.policy.redeliver_max}) exhausted"))
            return
        self.stats.inc("redelivered")
        with obs_trace.span("shard:redeliver", cat="shard",
                            rid=rec.rid, attempt=rec.redelivered,
                            reason=reason):
            self._dispatch(rec)

    def _serve_eager_floor(self, rec: _Inflight) -> None:
        """Answer one request in-process with the eager pipeline — the
        availability floor when the whole fleet is gone."""
        with self._lock:
            self._inflight.pop(rec.rid, None)
        if not self.policy.eager_floor:
            self.stats.inc("crash_failures")
            rec.future.set_result(self._typed_error(
                rec, STATUS_ERROR,
                "WorkerCrashed: no workers available and the eager "
                "floor is disabled"))
            return
        self.stats.inc("eager_floor")
        wl = get_workload(rec.workload)
        start = time.perf_counter()
        try:
            outs = wl.model_fn(*decode_args(rec.args_wire))
        except Exception as exc:  # keep the floor total: typed answer
            self.stats.inc("errors")
            self.stats.inc("answered")
            rec.future.set_result(self._typed_error(
                rec, STATUS_ERROR,
                f"{type(exc).__name__}: {exc}"))
            return
        outputs = outs if isinstance(outs, tuple) else (outs,)
        self.stats.inc("ok")
        self.stats.inc("answered")
        rec.future.set_result(Response(
            request_id=rec.rid, workload=rec.workload,
            pipeline=rec.pipeline, platform=rec.platform,
            status=STATUS_OK, served_by="eager", degraded=True,
            fallback_depth=1, priority=rec.priority, tenant=rec.tenant,
            outputs=outputs, batch_requests=1, batch_rows=1,
            exec_wall_s=time.perf_counter() - start,
            redelivered=rec.redelivered))

    def _typed_error(self, rec: _Inflight, status: str,
                     error: str) -> Response:
        """A terminal non-OK response carrying a typed error string."""
        return Response(
            request_id=rec.rid, workload=rec.workload,
            pipeline=rec.pipeline, platform=rec.platform, status=status,
            priority=rec.priority, tenant=rec.tenant, error=error,
            worker=rec.worker, redelivered=rec.redelivered)

    # -- supervisor callbacks -------------------------------------------

    def _on_ready(self, handle: WorkerHandle) -> None:
        """A worker said HELLO: join the ring, record its warm-start
        report, drain anything parked."""
        hello = handle.hello
        self.stats.worker_warmed[
            f"{handle.worker_id}:g{handle.generation}"] = \
            int(hello.get("warmed", 0))
        self.stats.worker_compiles[handle.worker_id] = \
            int(hello.get("compiles", 0))
        self.ring.add(handle.worker_id)
        self._drain_parked()

    def _drain_parked(self) -> None:
        with self._lock:
            parked, self._parked = self._parked, []
        for rec in parked:
            self._dispatch(rec)

    def _on_death(self, handle: WorkerHandle, reason: str) -> None:
        """A worker incarnation died: leave the ring, redeliver its
        in-flight requests to the survivors."""
        self.ring.remove(handle.worker_id)
        with self._lock:
            doomed = [rec for rec in self._inflight.values()
                      if rec.worker == handle.worker_id
                      and rec.generation == handle.generation]
        for rec in doomed:
            self._redeliver(rec, reason=reason)

    def _on_retired(self, worker_id: str) -> None:
        """A slot exhausted its respawn budget: it never comes back, so
        parked requests must not wait for it."""
        self.ring.remove(worker_id)
        self._drain_parked()

    def _on_message(self, handle: WorkerHandle, msg_type: int,
                    payload) -> None:
        """RESULT frames resolve futures; the first answer wins."""
        if msg_type != MSG_RESULT or not isinstance(payload, dict):
            return
        rid = payload.get("rid")
        worker = str(payload.get("worker", handle.worker_id))
        if "compiles" in payload:
            self.stats.worker_compiles[worker] = int(payload["compiles"])
        with self._lock:
            rec = self._inflight.pop(rid, None)
        if rec is None:
            self.stats.inc("duplicates_dropped")
            return
        if payload.get("duplicate"):
            self.stats.inc("replayed")
        status = str(payload.get("status", STATUS_ERROR))
        try:
            outputs = decode_args(payload.get("outputs", []))
        except Exception:
            outputs = ()
            status = STATUS_ERROR
        self.stats.inc("answered")
        self.stats.inc("ok" if status == STATUS_OK else "errors")
        rec.future.set_result(Response(
            request_id=rec.rid, workload=rec.workload,
            pipeline=rec.pipeline, platform=rec.platform, status=status,
            served_by=str(payload.get("served_by", "")),
            fallback_depth=int(payload.get("fallback_depth", 0)),
            degraded=bool(payload.get("degraded", False)),
            priority=rec.priority, tenant=rec.tenant, outputs=outputs,
            batch_requests=int(payload.get("batch_requests", 0)),
            batch_rows=int(payload.get("batch_rows", 0)),
            kernel_launches=int(payload.get("kernel_launches", 0)),
            queue_wait_s=float(payload.get("queue_wait_s", 0.0)),
            exec_wall_s=float(payload.get("exec_wall_s", 0.0)),
            cache_hit=bool(payload.get("cache_hit", False)),
            error=str(payload.get("error", "")), worker=worker,
            redelivered=rec.redelivered))

    def report(self) -> Dict[str, object]:
        """One merged observability snapshot: router counters plus the
        supervisor's death/respawn ledger."""
        out = self.stats.to_dict()
        out["deaths"] = self.supervisor.deaths
        out["death_reasons"] = dict(self.supervisor.death_reasons)
        out["respawned"] = self.supervisor.respawned
        out["workers_ready"] = len(self.ring)
        return out

    # -- shutdown -------------------------------------------------------

    def shutdown(self, drain: bool = True,
                 timeout: float = 15.0) -> None:
        """Stop the fleet and answer everything still unresolved with
        a typed ``ServerShutdown`` cancellation (never a hang)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if drain:
            deadline = time.monotonic() + timeout
            while time.monotonic() < deadline:
                with self._lock:
                    if not self._inflight and not self._parked:
                        break
                time.sleep(0.02)
        self.supervisor.stop(drain=drain, timeout=max(1.0, timeout / 3))
        with self._lock:
            leftovers = list(self._inflight.values()) + self._parked
            self._inflight.clear()
            self._parked = []
        for rec in leftovers:
            if not rec.future.done():
                rec.future.set_result(self._typed_error(
                    rec, STATUS_CANCELLED,
                    "ServerShutdown: router shut down with the request "
                    "still in flight"))
