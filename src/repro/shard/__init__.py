"""repro.shard — crash-tolerant multi-process serving.

The package splits the single-process serving stack into a *router*
process that consistent-hashes requests by shape-specialization key
onto N supervised *worker* processes, each running the existing
continuous-batching :class:`repro.serve.server.Server` internally.
Compiled programs cross the process boundary as versioned, checksummed
*artifacts* (:mod:`repro.shard.artifact`): mutation-free TensorSSA
graphs, their memory plans, shape-family guards, and compiled-kernel
descriptions, persisted in a content-addressed store so a restarted
worker warm-starts with zero cold compiles.

Robustness is the point: per-worker heartbeats with deadline
detection, crash detection via sentinel + join, typed
:class:`repro.errors.WorkerCrashed`, at-most-once redelivery of
in-flight requests, hash-ring reroute on death, and bounded respawn
with jittered backoff — the router degrades to in-process eager
execution only when every worker is down.
"""

from .artifact import (ARTIFACT_VERSION, ArtifactStore, RestoredArtifact,
                       deserialize_compiled, serialize_compiled)
from .ipc import (MSG_GOODBYE, MSG_HEARTBEAT, MSG_HELLO, MSG_RESULT,
                  MSG_SHUTDOWN, MSG_SUBMIT, Channel, decode_args,
                  encode_args, read_message, write_message)
from .router import HashRing, RouterStats, ShardPolicy, ShardRouter
from .supervisor import Supervisor, WorkerHandle
from .worker import worker_main

__all__ = [
    "ARTIFACT_VERSION", "ArtifactStore", "RestoredArtifact",
    "serialize_compiled", "deserialize_compiled",
    "Channel", "read_message", "write_message", "encode_args",
    "decode_args", "MSG_HELLO", "MSG_SUBMIT", "MSG_RESULT",
    "MSG_HEARTBEAT", "MSG_SHUTDOWN", "MSG_GOODBYE",
    "HashRing", "ShardPolicy", "ShardRouter", "RouterStats",
    "Supervisor", "WorkerHandle", "worker_main",
]
