"""Versioned, checksummed serialization of compiled programs.

A compiled artifact — the functional TensorSSA graph, its memory-plan
slot table, the shape-family guards it was specialized under, and
descriptions of its fused kernels — is exactly the state a worker
process must rebuild after a crash.  Because holistic
functionalization leaves the graph mutation-free, that state is a pure
value: this module flattens it to canonical JSON, seals it in a
checksummed envelope, and restores it to a runnable
:class:`~repro.pipelines.base.Compiled` whose outputs are bit-exact
with a fresh compile.

Format (envelope)::

    {"magic": "repro-artifact", "checksum": sha256(payload-json),
     "payload": {"version": 1, "pipeline": ..., "key": ...,
                 "graph": ..., "memplan": ..., "family": ...,
                 "kernels": [...], "stats": {...}}}

Design decisions worth recording:

* The graph codec is *structural*, not textual: the printer/parser
  round-trip is lossy (it drops ``horizontal``/``num_member_ops``
  attrs and output types), so nodes, blocks, and values are encoded
  field-by-field and value names are preserved exactly — which makes
  kernel source generation deterministic, so kernels are shipped as
  *descriptions* (builder kind + source digest) and rebuilt on
  restore, with the digest check proving the restored graph lowers to
  byte-identical kernel code.
* The memory plan is *not* trusted from the wire: the restore replans
  the graph and verifies the recorded slot table matches, so a stale
  or tampered plan can never mis-alias buffers.
* Every failure path raises :class:`repro.errors.ArtifactError` — the
  caller's contract is "fall back to a cold compile", never a crash.

:class:`ArtifactStore` is the content-addressed on-disk form: objects
are written once under their payload digest and an index maps compile
keys to digests, so a respawned worker warm-starts its compile cache
with zero compiles (see :meth:`ArtifactStore.warm_start`).
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import tempfile
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..backend import fusion_runtime
from ..backend.codegen import compile_block
from ..backend.interpreter import run_graph
from ..errors import ArtifactError
from ..eval.harness import CompileCache
from ..ir import types as T
from ..ir import verify
from ..ir.graph import Graph, Node, Value, free_values
from ..memplan import get_or_build_plan
from ..obs import trace as obs_trace
from ..ops import registry
from ..pipelines.base import Compiled
from ..runtime.dtype import DType
from ..runtime.tensor import Tensor
from ..symshape.family import ShapeFamily
from ..symshape.guards import Guard
from ..symshape.propagate import annotate_symbolic_shapes
from ..symshape.symbols import SymInt

__all__ = ["ARTIFACT_VERSION", "RestoredArtifact", "serialize_compiled",
           "deserialize_compiled", "ArtifactStore"]

#: bump on any incompatible change to the payload layout
ARTIFACT_VERSION = 1

_MAGIC = "repro-artifact"

#: node attrs the codec understands; ``kernel`` is deliberately absent
#: (kernels are rebuilt from descriptions, never pickled closures)
_ATTR_KEYS = ("value", "horizontal", "num_member_ops")


def _canonical(obj) -> str:
    """Canonical JSON text — the checksum and digest substrate."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


# -- type codec ---------------------------------------------------------

_SIMPLE_TYPES = {
    "int": T.IntType, "float": T.FloatType, "bool": T.BoolType,
    "str": T.StrType, "none": T.NoneType, "any": T.AnyType,
}


def _encode_type(typ: T.Type) -> dict:
    """One IR type as a tagged dict."""
    if isinstance(typ, T.TensorType):
        return {"k": "tensor", "dtype": typ.dtype,
                "shape": list(typ.shape) if typ.shape is not None else None}
    if isinstance(typ, T.ListType):
        return {"k": "list", "elem": _encode_type(typ.elem)}
    if isinstance(typ, T.TupleType):
        return {"k": "tuple", "elems": [_encode_type(e) for e in typ.elems]}
    for tag, cls in _SIMPLE_TYPES.items():
        if type(typ) is cls:
            return {"k": tag}
    raise ArtifactError(f"unsupported IR type: {typ!r}")


def _decode_type(spec: dict) -> T.Type:
    """Inverse of :func:`_encode_type`."""
    kind = spec.get("k")
    if kind == "tensor":
        shape = spec.get("shape")
        return T.TensorType(spec.get("dtype"),
                            tuple(shape) if shape is not None else None)
    if kind == "list":
        return T.ListType(_decode_type(spec["elem"]))
    if kind == "tuple":
        return T.TupleType(tuple(_decode_type(e) for e in spec["elems"]))
    cls = _SIMPLE_TYPES.get(kind)
    if cls is None:
        raise ArtifactError(f"unknown type tag {kind!r}")
    return cls()


# -- payload (constant / argument) codec --------------------------------

def _encode_payload(value) -> object:
    """A Python constant payload as JSON-able tagged data.

    Scalars pass through; containers, tensors, and dtypes are tagged so
    decoding is unambiguous (JSON has no tuples and no ndarrays).
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, list):
        return {"k": "pylist", "items": [_encode_payload(v) for v in value]}
    if isinstance(value, tuple):
        return {"k": "pytuple", "items": [_encode_payload(v) for v in value]}
    if isinstance(value, Tensor):
        arr = np.ascontiguousarray(value.numpy())
        return {"k": "ndarray", "dtype": value.dtype.name,
                "shape": list(arr.shape),
                "data": base64.b64encode(arr.tobytes()).decode("ascii")}
    if isinstance(value, DType):
        return {"k": "dtype", "name": value.name}
    raise ArtifactError(f"unsupported constant payload: {value!r}")


def _decode_payload(spec) -> object:
    """Inverse of :func:`_encode_payload`."""
    if spec is None or isinstance(spec, (bool, int, float, str)):
        return spec
    if not isinstance(spec, dict):
        raise ArtifactError(f"malformed payload: {spec!r}")
    kind = spec.get("k")
    if kind == "pylist":
        return [_decode_payload(v) for v in spec["items"]]
    if kind == "pytuple":
        return tuple(_decode_payload(v) for v in spec["items"])
    if kind == "ndarray":
        dtype = DType._registry.get(spec["dtype"])
        if dtype is None:
            raise ArtifactError(f"unknown dtype {spec['dtype']!r}")
        raw = base64.b64decode(spec["data"].encode("ascii"))
        arr = np.frombuffer(raw, dtype=dtype.np).reshape(spec["shape"])
        return Tensor.from_array(arr, copy=True)
    if kind == "dtype":
        dtype = DType._registry.get(spec["name"])
        if dtype is None:
            raise ArtifactError(f"unknown dtype {spec['name']!r}")
        return dtype
    raise ArtifactError(f"unknown payload tag {kind!r}")


# -- graph codec --------------------------------------------------------

def _encode_attrs(node: Node) -> dict:
    out = {}
    for key, val in node.attrs.items():
        if key == "kernel":
            continue  # rebuilt from the kernel description on restore
        if key not in _ATTR_KEYS:
            raise ArtifactError(
                f"node {node.op} carries unserializable attr {key!r}")
        out[key] = _encode_payload(val)
    return out


def _encode_node(node: Node) -> dict:
    return {
        "op": node.op,
        "inputs": [v.name for v in node.inputs],
        "outputs": [{"name": v.name, "type": _encode_type(v.type)}
                    for v in node.outputs],
        "attrs": _encode_attrs(node),
        "blocks": [_encode_block(b) for b in node.blocks],
    }


def _encode_block(block) -> dict:
    return {
        "params": [{"name": p.name, "type": _encode_type(p.type)}
                   for p in block.params],
        "nodes": [_encode_node(n) for n in block.nodes],
        "returns": [r.name for r in block.returns],
    }


def encode_graph(graph: Graph) -> dict:
    """The graph as structural JSON-able data, names preserved exactly."""
    return {"name": graph.name, "block": _encode_block(graph.block)}


def _decode_block_into(block, spec: dict, graph: Graph,
                       env: Dict[str, Value]) -> None:
    for pspec in spec["params"]:
        # construct Values directly (not via add_param) so restored
        # names match the serialized ones exactly — kernel source
        # generation depends on them
        value = Value(pspec["name"], _decode_type(pspec["type"]),
                      param_block=block)
        block.params.append(value)
        env[value.name] = value
    for nspec in spec["nodes"]:
        try:
            registry.get(nspec["op"])
        except KeyError as exc:
            raise ArtifactError(f"unknown op {nspec['op']!r}") from exc
        node = Node(nspec["op"], graph)
        for name in nspec["inputs"]:
            if name not in env:
                raise ArtifactError(f"dangling input %{name}")
            node.add_input(env[name])
        for ospec in nspec["outputs"]:
            value = Value(ospec["name"], _decode_type(ospec["type"]),
                          node=node)
            node.outputs.append(value)
            env[value.name] = value
        for key, val in nspec["attrs"].items():
            if key not in _ATTR_KEYS:
                raise ArtifactError(f"unknown node attr {key!r}")
            node.attrs[key] = _decode_payload(val)
        for bspec in nspec["blocks"]:
            inner = node.add_block()
            _decode_block_into(inner, bspec, graph, env)
        block.append(node)
    for name in spec["returns"]:
        if name not in env:
            raise ArtifactError(f"dangling return %{name}")
        block.add_return(env[name])


def decode_graph(spec: dict) -> Graph:
    """Rebuild a graph from :func:`encode_graph` data and verify it."""
    import itertools

    graph = Graph(spec["name"])
    env: Dict[str, Value] = {}
    _decode_block_into(graph.block, spec["block"], graph, env)
    # advance the fresh-name counters past every restored name so any
    # later construction on this graph cannot collide
    highest: Dict[str, int] = {}
    for name in env:
        base, _, suffix = name.rpartition(".")
        if base and suffix.isdigit():
            highest[base] = max(highest.get(base, -1), int(suffix))
    for base, top in highest.items():
        graph._name_counts[base] = itertools.count(top + 1)
    try:
        verify(graph)
    except Exception as exc:
        raise ArtifactError(f"restored graph fails verification: {exc}") \
            from exc
    return graph


# -- symbolic-shape codec ----------------------------------------------

def _encode_symint(sym: SymInt) -> dict:
    if sym.is_symbol:
        return {"k": "sym", "name": sym.name}
    if sym.is_const:
        return {"k": "const", "value": sym.value}
    return {"k": "expr", "op": sym.op,
            "args": [_encode_symint(a) for a in sym.args]}


def _decode_symint(spec: dict) -> SymInt:
    kind = spec.get("k")
    if kind == "sym":
        return SymInt.sym(spec["name"])
    if kind == "const":
        return SymInt.const(spec["value"])
    if kind == "expr":
        return SymInt(spec["op"],
                      tuple(_decode_symint(a) for a in spec["args"]))
    raise ArtifactError(f"unknown symint tag {kind!r}")


def _encode_sym_signature(signature) -> list:
    out = []
    for entry in signature:
        if isinstance(entry, tuple):
            out.append({"k": "dims",
                        "dims": [_encode_symint(d) for d in entry]})
        elif isinstance(entry, SymInt):
            out.append(_encode_symint(entry))
        else:
            out.append({"k": "lit", "value": _encode_payload(entry)})
    return out


def _decode_sym_signature(spec: list) -> tuple:
    out = []
    for entry in spec:
        kind = entry.get("k") if isinstance(entry, dict) else None
        if kind == "dims":
            out.append(tuple(_decode_symint(d) for d in entry["dims"]))
        elif kind == "lit":
            out.append(_decode_payload(entry["value"]))
        else:
            out.append(_decode_symint(entry))
    return tuple(out)


def _encode_family(family: ShapeFamily) -> dict:
    # the seed env is not stored on the family; rebinding the seed
    # signature against the symbolic one recovers it exactly
    seed_env = family.bind(family.seed_signature) or {}
    return {
        "family_id": family.family_id,
        "prefix": _encode_payload(tuple(family.prefix)),
        "signature": _encode_sym_signature(family.signature),
        "seed_signature": _encode_payload(tuple(family.seed_signature)),
        "seed_env": seed_env,
        "max_extents": family.extent_bounds(),
        "guards": [{"kind": g.kind, "lhs": _encode_symint(g.lhs),
                    "rhs": g.rhs, "aux": g.aux}
                   for g in family.guards],
    }


def _decode_family(spec: dict) -> ShapeFamily:
    seed_env = {str(k): int(v) for k, v in spec["seed_env"].items()}
    family = ShapeFamily(
        family_id=spec["family_id"],
        prefix=_decode_payload(spec["prefix"]),
        signature=_decode_sym_signature(spec["signature"]),
        seed_signature=_decode_payload(spec["seed_signature"]),
        seed_env=seed_env)
    # GuardSet deduplicates, so re-adding the implicit >=2 guards that
    # __init__ already minted is harmless
    for gspec in spec["guards"]:
        try:
            family.guards.add(Guard(gspec["kind"],
                                    _decode_symint(gspec["lhs"]),
                                    gspec["rhs"], gspec.get("aux", 0)))
        except ValueError as exc:
            raise ArtifactError(f"invalid guard in artifact: {exc}") \
                from exc
    family._max_extents = {str(k): int(v)
                           for k, v in spec["max_extents"].items()}
    family.seal()
    return family


# -- kernel descriptions -----------------------------------------------

def _kernel_kind(node: Node) -> Optional[str]:
    if node.op == "prim::FusionGroup":
        return "fusion"
    if node.op == "prim::Loop" and node.attrs.get("horizontal"):
        return "hloop"
    if node.op == "prim::ParallelMap":
        return "pmap"
    return None


def _build_kernel(node: Node, kind: str):
    """The exact builder :mod:`repro.backend.fusion_runtime` uses."""
    if kind == "fusion":
        return compile_block(node.blocks[0], name="_fusion")
    if kind == "hloop":
        body = node.blocks[0]
        return compile_block(body, name="_hloop",
                             extra_inputs=free_values(body))
    if kind == "pmap":
        return compile_block(node.blocks[0], name="_pmap")
    raise ArtifactError(f"unknown kernel kind {kind!r}")


def _encode_kernels(graph: Graph) -> List[dict]:
    """Describe every kernel-bearing node: walk index, builder kind,
    and the sha256 of its generated source (the restore-time proof that
    the shipped graph lowers to the same code)."""
    out = []
    for index, node in enumerate(graph.walk()):
        kind = _kernel_kind(node)
        if kind is None:
            continue
        kernel = node.attrs.get("kernel")
        if kernel is None:
            kernel = _build_kernel(node, kind)
        source = getattr(kernel, "__source__", "")
        out.append({"index": index, "kind": kind, "op": node.op,
                    "source_sha256": _sha256(source)})
    return out


def _restore_kernels(graph: Graph, specs: List[dict]) -> int:
    """Pre-compile every described kernel into the restored graph.

    Returns the number built; raises :class:`ArtifactError` when a
    described node is missing or its regenerated source digest differs
    from the recorded one.
    """
    nodes = list(graph.walk())
    built = 0
    for spec in specs:
        index = spec["index"]
        if index >= len(nodes) or nodes[index].op != spec["op"]:
            raise ArtifactError(
                f"kernel description #{index} does not match the "
                f"restored graph")
        node = nodes[index]
        kernel = _build_kernel(node, spec["kind"])
        digest = _sha256(getattr(kernel, "__source__", ""))
        if digest != spec["source_sha256"]:
            raise ArtifactError(
                f"kernel source mismatch at node #{index} ({node.op}): "
                f"restored graph lowers to different code")
        with fusion_runtime._kernel_lock:
            node.attrs["kernel"] = kernel
        built += 1
    return built


# -- memory-plan codec -------------------------------------------------

def _encode_plan(plan) -> Optional[dict]:
    if plan is None:
        return None
    return {
        "summary": plan.summary(),
        "slots": [{"index": s.index, "size_hint": s.size_hint,
                   "occupants": s.occupants()} for s in plan.slots],
    }


def _restore_plan(graph: Graph, spec: Optional[dict],
                  size_env: Optional[Dict[str, int]]):
    """Replan the restored graph and verify it matches the recorded
    slot table — the plan itself is never trusted from the wire."""
    if spec is None:
        return None
    plan = get_or_build_plan(graph, size_env=size_env)
    got = _encode_plan(plan)
    if got != spec:
        raise ArtifactError(
            "restored memory plan disagrees with the recorded slot "
            f"table (got {got['summary']}, recorded {spec['summary']})")
    return plan


# -- stats filtering ---------------------------------------------------

def _jsonable_stats(stats: dict) -> dict:
    """The JSON-able subset of a Compiled's stats (callables and other
    live objects — e.g. ``grad_reference`` — are dropped)."""
    out = {}
    for key, val in stats.items():
        try:
            json.dumps(val)
        except (TypeError, ValueError):
            continue
        out[key] = val
    return out


# -- top-level serialize / deserialize ---------------------------------

@dataclass
class RestoredArtifact:
    """A deserialized artifact: the runnable program plus its identity."""

    compiled: Compiled
    key: tuple
    pipeline: str
    family: Optional[ShapeFamily] = None
    #: kernels pre-compiled during restore (all of them — the warm
    #: path never compiles lazily)
    kernels_built: int = 0


def serialize_compiled(compiled: Compiled, key: tuple,
                       family: Optional[ShapeFamily] = None) -> bytes:
    """Flatten one compiled program to a checksummed artifact.

    ``key`` is the compile-cache key the artifact should be restored
    under (see :func:`repro.eval.harness.compile_key`); ``family`` is
    the shape family it was compiled inside, when family-keyed.
    Graph-free pipelines (eager) raise :class:`ArtifactError` — there
    is nothing stable to ship.
    """
    if compiled.graph is None:
        raise ArtifactError(
            f"pipeline {compiled.pipeline!r} produced no graph; only "
            "graph-bearing artifacts are serializable")
    with obs_trace.span("shard:serialize", cat="shard",
                        pipeline=compiled.pipeline):
        plan = getattr(compiled.graph, "_memplan", None)
        payload = {
            "version": ARTIFACT_VERSION,
            "pipeline": compiled.pipeline,
            "key": _encode_payload(tuple(key)),
            "graph": encode_graph(compiled.graph),
            "memplan": _encode_plan(plan),
            "family": _encode_family(family) if family is not None
            else None,
            "kernels": _encode_kernels(compiled.graph),
            "stats": _jsonable_stats(compiled.stats),
        }
        envelope = {"magic": _MAGIC, "checksum": _sha256(_canonical(payload)),
                    "payload": payload}
        return json.dumps(envelope, sort_keys=True).encode("utf-8")


def deserialize_compiled(data: bytes) -> RestoredArtifact:
    """Restore an artifact to a runnable compiled program.

    Every validation failure — malformed JSON, bad magic, checksum
    mismatch, version skew, graph/plan/kernel disagreement — raises
    :class:`ArtifactError`; the caller falls back to a cold compile.
    """
    with obs_trace.span("shard:deserialize", cat="shard"):
        try:
            envelope = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ArtifactError(f"malformed artifact: {exc}") from exc
        if not isinstance(envelope, dict) \
                or envelope.get("magic") != _MAGIC:
            raise ArtifactError("not a repro artifact (bad magic)")
        payload = envelope.get("payload")
        if not isinstance(payload, dict):
            raise ArtifactError("artifact has no payload")
        if envelope.get("checksum") != _sha256(_canonical(payload)):
            raise ArtifactError("artifact checksum mismatch "
                                "(corrupted or tampered payload)")
        version = payload.get("version")
        if version != ARTIFACT_VERSION:
            raise ArtifactError(
                f"artifact version {version!r} is not supported "
                f"(expected {ARTIFACT_VERSION})")
        try:
            key = _decode_payload(payload["key"])
            graph = decode_graph(payload["graph"])
            family = _decode_family(payload["family"]) \
                if payload.get("family") is not None else None
            size_env = None
            if family is not None:
                annotate_symbolic_shapes(graph, family.input_symshapes())
                size_env = family.extent_bounds()
            plan = _restore_plan(graph, payload.get("memplan"), size_env)
            built = _restore_kernels(graph, payload.get("kernels", ()))
        except ArtifactError:
            raise
        except Exception as exc:
            raise ArtifactError(f"artifact restore failed: {exc}") from exc

        def run(*args):
            outs = run_graph(graph, args, plan=plan)
            return outs[0] if len(outs) == 1 else tuple(outs)

        stats = dict(payload.get("stats", {}))
        stats["restored_from_artifact"] = True
        compiled = Compiled(pipeline=payload["pipeline"], fn=run,
                            graph=graph, stats=stats)
        return RestoredArtifact(compiled=compiled, key=key,
                                pipeline=payload["pipeline"],
                                family=family, kernels_built=built)


# -- content-addressed store -------------------------------------------

class ArtifactStore:
    """Content-addressed on-disk artifact store.

    Layout: ``<root>/objects/<sha256>`` holds the artifact bytes;
    ``<root>/index/<sha256(key)>`` is a tiny JSON record mapping one
    canonical compile-key text to its object digest.  Every write is
    an atomic temp-file + ``os.replace`` and each key owns its own
    index record, so concurrent worker *processes* sharing one store
    never lose each other's puts (a monolithic index file would make
    put a cross-process read-modify-write).  ``puts`` / ``loads`` /
    ``errors`` counters make warm-start behaviour observable in tests
    and drills.
    """

    def __init__(self, root: str) -> None:
        self.root = root
        self._objects = os.path.join(root, "objects")
        self._index_dir = os.path.join(root, "index")
        self._lock = threading.Lock()
        self.puts = 0
        self.loads = 0
        self.errors = 0
        os.makedirs(self._objects, exist_ok=True)
        os.makedirs(self._index_dir, exist_ok=True)

    # -- internals -----------------------------------------------------

    @staticmethod
    def _key_text(key: tuple) -> str:
        return _canonical(_encode_payload(tuple(key)))

    def _index_entry_path(self, key_text: str) -> str:
        return os.path.join(self._index_dir, _sha256(key_text))

    def _read_index(self) -> Dict[str, str]:
        index: Dict[str, str] = {}
        try:
            names = os.listdir(self._index_dir)
        except OSError:
            return index
        for name in names:
            if name.startswith(".tmp-"):
                continue
            try:
                with open(os.path.join(self._index_dir, name), "r",
                          encoding="utf-8") as fh:
                    entry = json.load(fh)
            except (OSError, ValueError):
                continue
            if isinstance(entry, dict) and "key" in entry \
                    and "digest" in entry:
                index[entry["key"]] = entry["digest"]
        return index

    def _atomic_write(self, path: str, data: bytes) -> None:
        fd, tmp = tempfile.mkstemp(dir=self.root, prefix=".tmp-")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- API -----------------------------------------------------------

    def put(self, key: tuple, compiled: Compiled,
            family: Optional[ShapeFamily] = None) -> str:
        """Serialize and persist one compiled program; returns the
        object digest.  Idempotent: identical content maps to the same
        object."""
        data = serialize_compiled(compiled, key, family=family)
        digest = hashlib.sha256(data).hexdigest()
        key_text = self._key_text(key)
        with self._lock:
            obj_path = os.path.join(self._objects, digest)
            if not os.path.exists(obj_path):
                self._atomic_write(obj_path, data)
            self._atomic_write(
                self._index_entry_path(key_text),
                _canonical({"key": key_text,
                            "digest": digest}).encode("utf-8"))
            self.puts += 1
        return digest

    def keys(self) -> List[tuple]:
        """Every compile key currently indexed."""
        with self._lock:
            index = self._read_index()
        out = []
        for key_text in index:
            try:
                out.append(tuple(_decode_payload(json.loads(key_text))))
            except (ValueError, ArtifactError):
                continue
        return out

    def load(self, key: tuple) -> Optional[RestoredArtifact]:
        """Restore the artifact stored under ``key``; None when absent.

        Corrupt objects raise :class:`ArtifactError` (and count in
        ``errors``) rather than returning a broken program.
        """
        entry_path = self._index_entry_path(self._key_text(key))
        try:
            with open(entry_path, "r", encoding="utf-8") as fh:
                entry = json.load(fh)
            digest = entry["digest"]
        except (OSError, ValueError, KeyError, TypeError):
            return None
        obj_path = os.path.join(self._objects, digest)
        try:
            with open(obj_path, "rb") as fh:
                data = fh.read()
        except OSError:
            return None
        try:
            restored = deserialize_compiled(data)
        except ArtifactError:
            with self._lock:
                self.errors += 1
            raise
        with self._lock:
            self.loads += 1
        return restored

    def __len__(self) -> int:
        with self._lock:
            return len(self._read_index())

    def warm_start(self, cache: CompileCache) -> int:
        """Seed a compile cache with every stored artifact.

        Entries land via :meth:`CompileCache.put`, so the cache's miss
        counters stay untouched — a warm-started worker that then
        serves only stored keys reports **zero** compiles.  Family
        artifacts also adopt their restored
        :class:`~repro.symshape.family.ShapeFamily` into the cache's
        family table so family-keyed lookups resolve to a hit.
        Corrupt entries are skipped (counted in ``errors``), never
        fatal: a missing warm entry just costs one cold compile.
        """
        warmed = 0
        with obs_trace.span("shard:warm_start", cat="shard"):
            for key in self.keys():
                try:
                    restored = self.load(key)
                except ArtifactError:
                    continue
                if restored is None:
                    continue
                if restored.family is not None:
                    cache.families.adopt(restored.family)
                cache.put(tuple(restored.key), restored.compiled)
                warmed += 1
        return warmed
