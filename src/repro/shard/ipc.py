"""Length-prefixed framed IPC between router and workers.

Messages travel over a UNIX-domain stream socket as explicit frames::

    header  = struct ">4sBI"  (magic b"RSH1", message type, payload len)
    payload = pickle bytes

Explicit framing (rather than trusting pickle to self-delimit on a
stream) is a robustness decision: when a worker is SIGKILLed
mid-write, the reader sees a short read and raises a clean
``ConnectionError`` instead of unpickling a torn object — the
supervisor then handles the crash through one code path.

Tensor arguments and outputs cross the boundary as tagged numpy arrays
(:func:`encode_args` / :func:`decode_args`): a
:class:`~repro.runtime.tensor.Tensor` owns live ``Storage`` that must
not leak between processes, so only its bytes travel and each side
rebuilds a storage-owning tensor.
"""

from __future__ import annotations

import pickle
import socket
import struct
import threading
from typing import Optional, Tuple

import numpy as np

from ..runtime.tensor import Tensor

__all__ = ["MAGIC", "HEADER", "MAX_FRAME", "MSG_HELLO", "MSG_SUBMIT",
           "MSG_RESULT", "MSG_HEARTBEAT", "MSG_SHUTDOWN", "MSG_GOODBYE",
           "Channel", "read_message", "write_message", "encode_args",
           "decode_args"]

#: frame magic: "Repro SHard v1"
MAGIC = b"RSH1"

#: frame header: magic, message type, payload length
HEADER = struct.Struct(">4sBI")

#: refuse frames beyond this size — a corrupted length prefix must not
#: make the reader allocate gigabytes
MAX_FRAME = 256 * 1024 * 1024

#: message types
MSG_HELLO = 1      # worker -> router: ready, includes warm-start stats
MSG_SUBMIT = 2     # router -> worker: execute one request
MSG_RESULT = 3     # worker -> router: outcome of one request
MSG_HEARTBEAT = 4  # worker -> router: liveness beacon
MSG_SHUTDOWN = 5   # router -> worker: drain and exit
MSG_GOODBYE = 6    # worker -> router: clean exit acknowledgement


def write_message(sock: socket.socket, msg_type: int, payload) -> None:
    """Serialize ``payload`` and send it as one framed message."""
    data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    if len(data) > MAX_FRAME:
        raise ValueError(f"frame too large: {len(data)} bytes")
    sock.sendall(HEADER.pack(MAGIC, msg_type, len(data)) + data)


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes; ConnectionError on a short read."""
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionError(
                f"peer closed mid-frame ({n - remaining}/{n} bytes)")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_message(sock: socket.socket) -> Tuple[int, object]:
    """Read one framed message; ``(msg_type, payload)``.

    Raises ``ConnectionError`` on EOF, a torn frame, bad magic, or an
    oversized length prefix; ``socket.timeout`` propagates when the
    socket has a timeout configured.
    """
    header = _recv_exact(sock, HEADER.size)
    magic, msg_type, length = HEADER.unpack(header)
    if magic != MAGIC:
        raise ConnectionError(f"bad frame magic {magic!r}")
    if length > MAX_FRAME:
        raise ConnectionError(f"frame length {length} exceeds limit")
    data = _recv_exact(sock, length)
    try:
        return msg_type, pickle.loads(data)
    except Exception as exc:
        raise ConnectionError(f"undecodable frame payload: {exc}") from exc


class Channel:
    """One framed, thread-safe connection endpoint.

    Writes are serialized under a lock (the router's scatter thread and
    monitor thread may both talk to a worker); reads are expected from
    a single reader thread.  ``close`` is idempotent and safe to call
    from any thread — it is how the supervisor unblocks a reader
    waiting on a dead worker.
    """

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._wlock = threading.Lock()
        self._closed = False

    def send(self, msg_type: int, payload) -> None:
        """Send one message; ConnectionError if the peer is gone."""
        with self._wlock:
            if self._closed:
                raise ConnectionError("channel closed")
            try:
                write_message(self._sock, msg_type, payload)
            except (BrokenPipeError, OSError) as exc:
                raise ConnectionError(f"send failed: {exc}") from exc

    def recv(self, timeout: Optional[float] = None) -> Tuple[int, object]:
        """Receive one message, optionally bounded by ``timeout``."""
        self._sock.settimeout(timeout)
        try:
            return read_message(self._sock)
        except OSError as exc:
            if isinstance(exc, socket.timeout):
                raise
            raise ConnectionError(f"recv failed: {exc}") from exc

    def close(self) -> None:
        """Shut the connection down (idempotent)."""
        with self._wlock:
            if self._closed:
                return
            self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run."""
        return self._closed


def encode_args(args) -> list:
    """Encode a request's argument tuple for the wire.

    Tensors become ``("tensor", ndarray)`` pairs (a contiguous copy —
    no shared storage crosses the boundary); everything else must be a
    plain picklable scalar/container and passes through tagged
    ``("py", value)``.
    """
    out = []
    for arg in args:
        if isinstance(arg, Tensor):
            out.append(("tensor", np.ascontiguousarray(arg.numpy())))
        else:
            out.append(("py", arg))
    return out


def decode_args(spec) -> tuple:
    """Inverse of :func:`encode_args`: rebuild storage-owning tensors."""
    out = []
    for tag, value in spec:
        if tag == "tensor":
            out.append(Tensor.from_array(value, copy=True))
        else:
            out.append(value)
    return tuple(out)
