"""Shard worker process: one supervised serving shard.

``worker_main`` is the entry point the supervisor spawns (``spawn``
start method — a fresh interpreter, never a fork of the router's
threaded process).  Each worker:

1. installs its chaos fault plan (if the campaign shipped one as a
   :meth:`repro.faults.FaultPlan.to_spec` dict — live plans cannot
   cross the exec boundary);
2. warm-starts its private :class:`~repro.eval.harness.CompileCache`
   from the shared content-addressed
   :class:`~repro.shard.artifact.ArtifactStore`, so a restarted worker
   pays **zero** cold compiles for anything a previous incarnation
   compiled;
3. runs the existing continuous-batching
   :class:`~repro.serve.server.Server` in-process and answers framed
   ``SUBMIT`` messages with ``RESULT`` messages over the supervisor's
   UNIX socket;
4. beacons ``HEARTBEAT`` frames so the supervisor can distinguish
   *hung* from *dead*.

Crash semantics are deliberately brutal: the ``process_kill`` fault
site exits via ``os._exit(137)`` — no cleanup, no goodbye, exactly
what SIGKILL looks like from the outside — so the supervisor's crash
path is exercised honestly.  A fired ``heartbeat_stall`` fault stops
the beacon permanently while the serving loop keeps running, modeling
a wedged-but-alive process that only deadline detection can catch.

Every answered request id is remembered in a bounded result cache:
when the router redelivers a request that actually completed before
the crash was detected, the worker replays the recorded result with
``duplicate=True`` instead of executing it again (the at-most-once
guard's worker half).
"""

from __future__ import annotations

import os
import socket
import threading
import time
from collections import OrderedDict

from ..errors import ReproError
from ..eval.harness import CompileCache
from ..faults import (FaultPlan, SITE_HEARTBEAT_STALL, SITE_PROCESS_KILL,
                      global_fault_scope, maybe_inject)
from ..serve.policy import ServePolicy
from ..serve.server import Server
from .artifact import ArtifactError, ArtifactStore
from .ipc import (Channel, MSG_GOODBYE, MSG_HEARTBEAT, MSG_HELLO,
                  MSG_RESULT, MSG_SHUTDOWN, MSG_SUBMIT, decode_args,
                  encode_args)

__all__ = ["worker_main"]

#: remembered answered-request results (the redelivery replay cache)
_RESULT_CACHE_CAP = 1024


def _kill_checkpoint(point: str) -> None:
    """``process_kill`` fault site: under a scheduled fault, die the
    way SIGKILL dies — ``os._exit`` with status 137, skipping every
    finally block, atexit hook, and goodbye message."""
    try:
        maybe_inject(SITE_PROCESS_KILL, point)
    except ReproError:
        os._exit(137)


def _connect(path: str, timeout_s: float = 5.0) -> socket.socket:
    """Connect to the supervisor's UNIX socket, retrying briefly (the
    listener is up before spawn, but spawn startup is slow enough that
    we stay lenient)."""
    deadline = time.monotonic() + timeout_s
    while True:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            sock.connect(path)
            return sock
        except OSError:
            sock.close()
            if time.monotonic() >= deadline:
                raise
            time.sleep(0.05)


def _heartbeat_loop(chan: Channel, worker_id: str, interval_s: float,
                    stop: threading.Event) -> None:
    """Beacon liveness until told to stop.  A fired ``heartbeat_stall``
    fault silences the beacon *permanently* while the worker keeps
    serving — the hung-worker signature the router's deadline detector
    exists for."""
    seq = 0
    while not stop.wait(interval_s):
        try:
            maybe_inject(SITE_HEARTBEAT_STALL, worker_id)
        except ReproError:
            return  # stalled: alive but silent, forever
        try:
            chan.send(MSG_HEARTBEAT, {"worker": worker_id, "seq": seq,
                                      "t": time.monotonic()})
        except ConnectionError:
            return  # router is gone; the main loop will notice too
        seq += 1


def _publish(cache: CompileCache, store: ArtifactStore,
             published: set) -> int:
    """Persist every not-yet-published compiled entry into the shared
    artifact store, so the *next* incarnation of any worker warm-starts
    over this one's compilation work.  Family-keyed entries ship their
    :class:`~repro.symshape.family.ShapeFamily` alongside the graph.
    Unserializable entries (eager, graph-free) are skipped silently —
    a missing artifact only costs a future cold compile."""
    families = {f.family_id: f for f in cache.families.all_families()}
    count = 0
    for key, compiled in cache.entries():
        if key in published or getattr(compiled, "graph", None) is None:
            continue
        family = None
        if len(key) == 4 and key[2] == "family":
            family = families.get(key[3])
        try:
            store.put(key, compiled, family=family)
        except (ArtifactError, OSError):
            published.add(key)  # don't retry a hopeless entry forever
            continue
        published.add(key)
        count += 1
    return count


def _compile_events(cache: CompileCache) -> int:
    """Cold-compile count observed by this worker's cache (misses +
    guard misses) — the warm-restart "zero compiles" witness."""
    snap = cache.snapshot()
    return snap.misses + snap.guard_misses


def worker_main(cfg: dict) -> None:
    """Run one shard worker until shutdown, crash, or router loss.

    ``cfg`` keys (all plain picklable values — this dict crosses the
    spawn boundary):

    - ``worker_id``: stable label ("w0", ...) echoed in every message
    - ``socket_path``: the supervisor's UNIX-socket listener
    - ``store_root``: artifact store directory for warm start (None =
      cold cache)
    - ``policy``: :class:`~repro.serve.policy.ServePolicy` kwargs for
      the inner server
    - ``heartbeat_interval_s``: beacon period
    - ``fault_spec``: :meth:`~repro.faults.FaultPlan.to_spec` dict, or
      None for a fault-free worker
    - ``incarnation``: 1-based per-slot spawn count (supervisor-set)
    - ``fault_max_incarnations``: highest incarnation that still runs
      the fault plan (default 1: respawns come back healthy)
    """
    worker_id = cfg["worker_id"]
    plan = None
    if cfg.get("fault_spec") and (cfg.get("incarnation", 1)
                                  <= cfg.get("fault_max_incarnations", 1)):
        # by default only a slot's *first* incarnation runs the chaos
        # schedule: the drill's contract is that recovery succeeds, so
        # respawned workers come back healthy (raise
        # fault_max_incarnations to drill respawn-budget exhaustion)
        plan = FaultPlan.from_spec(cfg["fault_spec"])
    scope = global_fault_scope(plan) if plan is not None else None
    if scope is not None:
        scope.__enter__()
    try:
        _serve(cfg, worker_id)
    finally:
        if scope is not None:
            scope.__exit__(None, None, None)


def _serve(cfg: dict, worker_id: str) -> None:
    """The worker body: warm start, hello, serve, goodbye."""
    cache = CompileCache(
        capacity=cfg.get("policy", {}).get("cache_capacity", 128))
    warmed = 0
    store = None
    published: set = set()
    if cfg.get("store_root"):
        store = ArtifactStore(cfg["store_root"])
        warmed = store.warm_start(cache)
        published.update(store.keys())
    # crash-during-warm-start drill point: the work above is done, the
    # HELLO below never happens — the supervisor sees a pre-ready death
    _kill_checkpoint("boot")

    chan = Channel(_connect(cfg["socket_path"]))
    policy = ServePolicy(**cfg.get("policy", {}))
    server = Server(policy=policy, cache=cache)
    chan.send(MSG_HELLO, {"worker": worker_id, "pid": os.getpid(),
                          "warmed": warmed,
                          "compiles": _compile_events(cache)})

    stop_beacon = threading.Event()
    beacon = threading.Thread(
        target=_heartbeat_loop,
        args=(chan, worker_id, cfg.get("heartbeat_interval_s", 0.1),
              stop_beacon),
        name=f"shard-heartbeat-{worker_id}", daemon=True)
    beacon.start()

    results: "OrderedDict[object, dict]" = OrderedDict()
    results_lock = threading.Lock()

    def reply(payload: dict) -> None:
        rid = payload["rid"]
        with results_lock:
            results[rid] = payload
            while len(results) > _RESULT_CACHE_CAP:
                results.popitem(last=False)
        # crash-before-reply drill point: the request *executed* but
        # the answer is lost — redelivery must hit the replay cache of
        # the respawned worker or count as the one allowed re-execution
        _kill_checkpoint("reply")
        try:
            chan.send(MSG_RESULT, payload)
        except ConnectionError:
            pass  # router gone; result stays cached for a redeliver

    def on_done(rid: object, fut) -> None:
        if store is not None:
            _publish(cache, store, published)
        exc = fut.exception()
        if exc is not None:
            reply({"rid": rid, "worker": worker_id, "status": "error",
                   "error": f"{type(exc).__name__}: {exc}",
                   "typed": isinstance(exc, ReproError),
                   "outputs": [], "compiles": _compile_events(cache),
                   "duplicate": False})
            return
        resp = fut.result()
        reply({"rid": rid, "worker": worker_id, "status": resp.status,
               "outputs": encode_args(resp.outputs),
               "error": resp.error, "typed": True,
               "served_by": resp.served_by,
               "fallback_depth": resp.fallback_depth,
               "degraded": resp.degraded, "cache_hit": resp.cache_hit,
               "batch_requests": resp.batch_requests,
               "batch_rows": resp.batch_rows,
               "kernel_launches": resp.kernel_launches,
               "queue_wait_s": resp.queue_wait_s,
               "exec_wall_s": resp.exec_wall_s,
               "compiles": _compile_events(cache),
               "duplicate": False})

    try:
        while True:
            try:
                msg_type, payload = chan.recv()
            except ConnectionError:
                break  # supervisor/router gone: die quietly
            if msg_type == MSG_SHUTDOWN:
                server.shutdown(drain=bool(payload.get("drain", True)),
                                timeout=payload.get("timeout"))
                try:
                    chan.send(MSG_GOODBYE, {
                        "worker": worker_id,
                        "compiles": _compile_events(cache)})
                except ConnectionError:
                    pass
                break
            if msg_type != MSG_SUBMIT:
                continue
            # crash-on-receipt drill point: request accepted, never
            # executed — the cleanest redelivery case
            _kill_checkpoint("submit")
            rid = payload["rid"]
            with results_lock:
                prior = results.get(rid)
            if prior is not None:
                dup = dict(prior)
                dup["duplicate"] = True
                try:
                    chan.send(MSG_RESULT, dup)
                except ConnectionError:
                    break
                continue
            fut = server.submit(
                payload["workload"], args=decode_args(payload["args"]),
                pipeline=payload.get("pipeline", "tensorssa"),
                platform=payload.get("platform", "datacenter"),
                timeout_s=payload.get("timeout_s"),
                priority=payload.get("priority", 0),
                tenant=payload.get("tenant", "default"))
            fut.add_done_callback(
                lambda f, _rid=rid: on_done(_rid, f))
    finally:
        stop_beacon.set()
        try:
            server.shutdown(drain=False, timeout=1.0)
        except Exception:
            pass
        chan.close()
