"""Worker-process supervision: spawn, watch, detect death, respawn.

The :class:`Supervisor` owns N worker slots.  Each slot holds one live
:class:`WorkerHandle` — a spawned ``multiprocessing`` process (always
the ``spawn`` start method: the router is threaded, and forking a
threaded process inherits locks in unknowable states) plus the framed
UNIX-socket :class:`~repro.shard.ipc.Channel` it dialed back on.

Death is detected two ways, because crashed and hung are different
failures:

* **crash** — the process object reports a non-None exitcode (the
  sentinel fired).  SIGKILL, ``os._exit``, segfault: all land here.
* **hang** — the process is alive but its heartbeat beacon has been
  silent past ``heartbeat_timeout_s``.  The supervisor kills it
  (escalating terminate → kill) and treats it as a crash; a process
  that can't prove liveness doesn't get to keep its slot.

On death the supervisor invokes the router's ``on_death`` callback
(inflight redelivery happens there), then respawns the slot with
seeded, jittered exponential backoff — up to ``max_respawns`` times,
after which the slot is *retired* and ``on_retired`` fires (the router
drops it from the hash ring for good).  All spawning after the first
happens on a dedicated respawn thread so a backoff sleep never blocks
death detection on the other slots.
"""

from __future__ import annotations

import os
import random
import shutil
import socket
import tempfile
import threading
import time
import multiprocessing
from typing import Callable, Dict, List, Optional

from ..obs import trace as obs_trace
from .ipc import (Channel, MSG_GOODBYE, MSG_HEARTBEAT, MSG_HELLO,
                  MSG_SHUTDOWN)
from .worker import worker_main

__all__ = ["Supervisor", "WorkerHandle"]


class WorkerHandle:
    """One live (or dying) worker incarnation.

    Identity is ``(worker_id, generation)``: a respawned slot keeps
    its ``worker_id`` (and therefore its hash-ring position) but gets
    a fresh generation, so a stale result from a previous incarnation
    can never be mistaken for a live one.
    """

    def __init__(self, worker_id: str, slot: int, generation: int) -> None:
        self.worker_id = worker_id
        self.slot = slot
        self.generation = generation
        self.proc: Optional[multiprocessing.process.BaseProcess] = None
        self.channel: Optional[Channel] = None
        #: HELLO received and channel attached — routable
        self.ready = threading.Event()
        #: last heartbeat (or HELLO) arrival, monotonic
        self.last_beat = time.monotonic()
        self.spawned_at = time.monotonic()
        #: HELLO payload (pid, warm-start stats)
        self.hello: dict = {}
        #: set once the supervisor has declared this incarnation dead
        self.dead = threading.Event()
        #: set when the supervisor asked it to exit (a clean 0 exit
        #: after this is a shutdown, not a crash)
        self.stopping = threading.Event()

    @property
    def alive(self) -> bool:
        """Routable: ready, not declared dead, channel open."""
        return (self.ready.is_set() and not self.dead.is_set()
                and self.channel is not None and not self.channel.closed)

    def __repr__(self) -> str:
        state = ("dead" if self.dead.is_set()
                 else "ready" if self.ready.is_set() else "starting")
        return (f"WorkerHandle({self.worker_id} g{self.generation} "
                f"{state})")


class Supervisor:
    """Spawns and babysits the worker fleet for one router.

    Callbacks (set before :meth:`start`; all invoked from supervisor
    threads, so they must be thread-safe):

    - ``on_message(handle, msg_type, payload)`` — every non-heartbeat
      frame from a ready worker (RESULT, GOODBYE)
    - ``on_ready(handle)`` — worker sent HELLO and is routable
    - ``on_death(handle, reason)`` — incarnation declared dead
      (``reason`` in {"crash", "hang", "boot"}); fired before respawn
    - ``on_retired(worker_id)`` — respawn budget exhausted, slot gone
    """

    def __init__(self, num_workers: int,
                 worker_cfg: Optional[dict] = None,
                 heartbeat_interval_s: float = 0.1,
                 heartbeat_timeout_s: float = 1.0,
                 ready_timeout_s: float = 60.0,
                 max_respawns: int = 2,
                 respawn_base_delay_s: float = 0.05,
                 respawn_max_delay_s: float = 1.0,
                 respawn_jitter: float = 0.5,
                 seed: int = 0) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.num_workers = num_workers
        #: template for worker_main cfg; per-spawn keys (worker_id,
        #: socket_path, heartbeat_interval_s) are filled in here
        self.worker_cfg = dict(worker_cfg or {})
        self.heartbeat_interval_s = heartbeat_interval_s
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.ready_timeout_s = ready_timeout_s
        self.max_respawns = max_respawns
        self.respawn_base_delay_s = respawn_base_delay_s
        self.respawn_max_delay_s = respawn_max_delay_s
        self.respawn_jitter = respawn_jitter
        self._rng = random.Random(seed)
        self._ctx = multiprocessing.get_context("spawn")
        self._dir = tempfile.mkdtemp(prefix="repro-shard-")
        self._lock = threading.RLock()
        self._handles: Dict[str, WorkerHandle] = {}
        self._respawns: Dict[str, int] = {}
        self._retired: set = set()
        self._generation = 0
        self._closed = threading.Event()
        self._threads: List[threading.Thread] = []
        self._monitor: Optional[threading.Thread] = None
        # router-installed callbacks
        self.on_message: Callable = lambda handle, mt, payload: None
        self.on_ready: Callable = lambda handle: None
        self.on_death: Callable = lambda handle, reason: None
        self.on_retired: Callable = lambda worker_id: None
        #: respawn/death counters for stats
        self.deaths = 0
        self.respawned = 0
        #: deaths by reason ("crash" / "hang" / "boot") — how chaos
        #: campaigns in the parent observe faults that fired inside
        #: child processes (a child's fault log dies with it)
        self.death_reasons: Dict[str, int] = {}

    # -- lifecycle ------------------------------------------------------

    def start(self) -> None:
        """Spawn every slot and start the monitor thread."""
        for slot in range(self.num_workers):
            self._spawn(f"w{slot}", slot)
        self._monitor = threading.Thread(target=self._monitor_loop,
                                         name="shard-monitor", daemon=True)
        self._monitor.start()

    def stop(self, drain: bool = True, timeout: float = 10.0) -> None:
        """Shut the fleet down: SHUTDOWN to every live worker, bounded
        wait for exits, escalate to terminate/kill, clean the socket
        dir.  Idempotent."""
        if self._closed.is_set():
            return
        self._closed.set()
        with self._lock:
            handles = list(self._handles.values())
        for handle in handles:
            handle.stopping.set()
            if handle.channel is not None and not handle.channel.closed:
                try:
                    handle.channel.send(MSG_SHUTDOWN, {"drain": drain})
                except ConnectionError:
                    pass
        deadline = time.monotonic() + timeout
        for handle in handles:
            proc = handle.proc
            if proc is None:
                continue
            proc.join(max(0.0, deadline - time.monotonic()))
            if proc.is_alive():
                proc.terminate()
                proc.join(1.0)
            if proc.is_alive():
                proc.kill()
                proc.join(1.0)
            if handle.channel is not None:
                handle.channel.close()
        if self._monitor is not None:
            self._monitor.join(2.0)
        shutil.rmtree(self._dir, ignore_errors=True)

    def handles(self) -> List[WorkerHandle]:
        """Snapshot of current slot handles (any state)."""
        with self._lock:
            return list(self._handles.values())

    def get(self, worker_id: str) -> Optional[WorkerHandle]:
        """The current incarnation for ``worker_id`` (None if retired)."""
        with self._lock:
            return self._handles.get(worker_id)

    # -- spawning -------------------------------------------------------

    def _spawn(self, worker_id: str, slot: int) -> WorkerHandle:
        """Spawn one incarnation: private listener socket, process,
        attach thread (accept + HELLO happens off-thread so a
        crash-at-boot never blocks anyone)."""
        with self._lock:
            self._generation += 1
            handle = WorkerHandle(worker_id, slot, self._generation)
            self._handles[worker_id] = handle
        path = os.path.join(self._dir,
                            f"{worker_id}-g{handle.generation}.sock")
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(path)
        listener.listen(1)
        cfg = dict(self.worker_cfg)
        cfg.update(worker_id=worker_id, socket_path=path,
                   heartbeat_interval_s=self.heartbeat_interval_s,
                   incarnation=self._respawns.get(worker_id, 0) + 1)
        proc = self._ctx.Process(target=worker_main, args=(cfg,),
                                 name=f"shard-{worker_id}", daemon=True)
        handle.proc = proc
        proc.start()
        t = threading.Thread(target=self._attach, args=(handle, listener),
                             name=f"shard-attach-{worker_id}", daemon=True)
        t.start()
        self._threads.append(t)
        return handle

    def _attach(self, handle: WorkerHandle, listener: socket.socket) -> None:
        """Accept the worker's dial-back, read HELLO, mark it ready,
        then become its reader thread."""
        try:
            listener.settimeout(self.ready_timeout_s)
            try:
                conn, _ = listener.accept()
            except (socket.timeout, OSError):
                return  # boot death/hang: the monitor handles it
            finally:
                listener.close()
            chan = Channel(conn)
            try:
                msg_type, payload = chan.recv(self.ready_timeout_s)
            except (socket.timeout, ConnectionError):
                chan.close()
                return
            if msg_type != MSG_HELLO:
                chan.close()
                return
            handle.channel = chan
            handle.hello = payload if isinstance(payload, dict) else {}
            handle.last_beat = time.monotonic()
            handle.ready.set()
            self.on_ready(handle)
            self._read_loop(handle, chan)
        except Exception:
            if handle.channel is not None:
                handle.channel.close()

    def _read_loop(self, handle: WorkerHandle, chan: Channel) -> None:
        """Drain one worker's frames until the connection dies."""
        while not handle.dead.is_set() and not self._closed.is_set():
            try:
                msg_type, payload = chan.recv()
            except (ConnectionError, socket.timeout, OSError):
                return  # monitor declares the death; we just stop
            if msg_type == MSG_HEARTBEAT:
                handle.last_beat = time.monotonic()
                continue
            if msg_type == MSG_GOODBYE:
                handle.stopping.set()
            self.on_message(handle, msg_type, payload)

    # -- death & respawn ------------------------------------------------

    def _monitor_loop(self) -> None:
        """Poll for crashes (exitcode set) and hangs (beacon silent
        past the deadline)."""
        tick = max(0.01, self.heartbeat_interval_s / 2)
        while not self._closed.is_set():
            time.sleep(tick)
            now = time.monotonic()
            for handle in self.handles():
                if handle.dead.is_set() or handle.stopping.is_set():
                    continue
                proc = handle.proc
                if proc is not None and proc.exitcode is not None:
                    reason = "crash" if handle.ready.is_set() else "boot"
                    self._declare_dead(handle, reason)
                    continue
                if handle.ready.is_set():
                    if now - handle.last_beat > self.heartbeat_timeout_s:
                        self._declare_dead(handle, "hang")
                elif now - handle.spawned_at > self.ready_timeout_s:
                    self._declare_dead(handle, "boot")

    def _declare_dead(self, handle: WorkerHandle, reason: str) -> None:
        """One incarnation is gone: kill what's left of it, notify the
        router, schedule the respawn."""
        if handle.dead.is_set():
            return
        handle.dead.set()
        self.deaths += 1
        with self._lock:
            self.death_reasons[reason] = \
                self.death_reasons.get(reason, 0) + 1
        with obs_trace.span("shard:heartbeat", cat="shard",
                            worker=handle.worker_id, reason=reason,
                            generation=handle.generation):
            proc = handle.proc
            if proc is not None and proc.is_alive():
                proc.terminate()
                proc.join(0.5)
                if proc.is_alive():
                    proc.kill()
                    proc.join(0.5)
            if handle.channel is not None:
                handle.channel.close()
        self.on_death(handle, reason)
        if self._closed.is_set():
            return
        count = self._respawns.get(handle.worker_id, 0)
        if count >= self.max_respawns:
            with self._lock:
                self._retired.add(handle.worker_id)
                self._handles.pop(handle.worker_id, None)
            self.on_retired(handle.worker_id)
            return
        self._respawns[handle.worker_id] = count + 1
        delay = min(self.respawn_max_delay_s,
                    self.respawn_base_delay_s * (2 ** count))
        delay *= 1.0 + self.respawn_jitter * self._rng.random()
        t = threading.Thread(
            target=self._respawn_after,
            args=(handle.worker_id, handle.slot, delay),
            name=f"shard-respawn-{handle.worker_id}", daemon=True)
        t.start()
        self._threads.append(t)

    def _respawn_after(self, worker_id: str, slot: int,
                       delay: float) -> None:
        """Backoff then respawn (dedicated thread per death so a sleep
        never delays detecting the next death)."""
        time.sleep(delay)
        if self._closed.is_set():
            return
        with obs_trace.span("shard:respawn", cat="shard",
                            worker=worker_id, delay_s=round(delay, 4)):
            self.respawned += 1
            self._spawn(worker_id, slot)
