"""Execution of fusion groups and horizontally-parallelized loops.

Each ``prim::FusionGroup`` executes as *one* kernel launch; a loop
marked ``horizontal`` by the parallelization pass (paper §4.2.2)
executes all of its iterations inside a single launch — the graph-level
equivalent of mapping the fused loop body across the iteration space on
device.

Kernels compute on raw numpy arrays, so only the *materialized outputs*
(wrapped into Tensors by ``_wrap``) allocate ``Storage`` — and those
allocations route through the active :class:`~repro.runtime.storage.
MemoryPool` when the interpreter runs under a memory plan, which is how
fused kernels participate in buffer donation (a dying operand's bytes,
released just before the launch, serve the outputs).

Schedules: every launch consults :func:`repro.tune.schedule.
active_schedule` — statement order and unroll/chunk factors select a
*kernel variant* (compiled lazily, cached per node alongside the
default kernel), ``tile_elems`` row-tiles elementwise-safe groups at
launch time.  The default kernel always lives at ``attrs["kernel"]``
(the shard artifact codec serializes exactly that slot); variants live
in ``attrs["kernel_variants"]`` and recompile on demand wherever the
artifact is restored.
"""

from __future__ import annotations

import threading
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..faults import SITE_FUSION_COMPILE, maybe_inject
from ..ir.graph import Node
from ..obs import trace as obs_trace
from ..runtime import profiler
from ..runtime.tensor import Tensor
from ..tune.schedule import Schedule, active_schedule
from .codegen import (compile_block, compile_block_chunked,
                      compile_block_unrolled)
from .kernels import execute_kernel, pre_launch

#: Guards lazy per-node kernel compilation: compiled graphs are shared
#: by concurrent serving workers, and without the lock two threads that
#: both observe ``attrs["kernel"] is None`` would compile the block
#: twice (wasted work, and a torn read of partially-populated attrs).
_kernel_lock = threading.Lock()


def _node_kernel(node: Node, build: Callable[[], object],
                 variant: Optional[tuple] = None) -> object:
    """The node's cached kernel, compiling once under the lock.

    ``variant=None`` is the default-schedule kernel at
    ``attrs["kernel"]`` — the slot the artifact codec round-trips.
    Schedule variants key ``attrs["kernel_variants"]`` by their knob
    tuple and never touch the default slot.

    Also the ``fusion_compile`` fault checkpoint: an injected
    :class:`~repro.errors.CompileError` raises before ``attrs`` is
    touched, so the node simply stays uncompiled — a later execution
    (e.g. on a retried rung) compiles it cleanly.
    """
    if variant is None:
        kernel = node.attrs.get("kernel")
        if kernel is None:
            with _kernel_lock:
                kernel = node.attrs.get("kernel")
                if kernel is None:
                    with obs_trace.span("kernel:compile", cat="compile",
                                        op=node.op):
                        maybe_inject(SITE_FUSION_COMPILE, node.op)
                        kernel = build()
                        node.attrs["kernel"] = kernel
        return kernel
    variants = node.attrs.get("kernel_variants")
    kernel = variants.get(variant) if variants is not None else None
    if kernel is None:
        with _kernel_lock:
            variants = node.attrs.setdefault("kernel_variants", {})
            kernel = variants.get(variant)
            if kernel is None:
                with obs_trace.span("kernel:compile", cat="compile",
                                    op=node.op, variant=str(variant)):
                    maybe_inject(SITE_FUSION_COMPILE, node.op)
                    kernel = build()
                    variants[variant] = kernel
    return kernel


def _group_kernel(node: Node, sched: Schedule) -> object:
    """The fusion-group kernel for ``sched`` (loop order is the only
    group-level compile knob)."""
    order = sched.loop_order
    if order == "program":
        return _node_kernel(
            node, lambda: compile_block(node.blocks[0], name="_fusion"))
    return _node_kernel(
        node,
        lambda: compile_block(node.blocks[0], name="_fusion",
                              loop_order=order),
        variant=("order", order))


def _unwrap(x):
    return x._array if isinstance(x, Tensor) else x


def _wrap(arr):
    if isinstance(arr, np.ndarray):
        if arr.base is not None or not arr.flags.owndata:
            arr = np.array(arr, copy=True)
        return Tensor.from_array(arr, copy=False)
    if isinstance(arr, np.generic):
        return Tensor.from_array(np.asarray(arr), copy=False)
    return arr


def _io_bytes(values) -> int:
    total = 0
    for v in values:
        if isinstance(v, Tensor):
            total += v.nbytes
        elif isinstance(v, np.ndarray):
            total += v.nbytes
    return total


def _tiled_launch(kernel, raw: List[object], tile_elems: int,
                  n_returns: int) -> Optional[List[object]]:
    """Row-tiled launch of an elementwise-safe kernel; None when the
    inputs don't qualify (caller falls back to the whole launch).

    Splits every array argument into row blocks of ~``tile_elems``
    elements along axis 0 and concatenates the per-tile outputs.  Only
    sound when all array args share one shape (no broadcasting across
    the tiled axis) — checked here per launch, and double-checked on
    the first tile's output shapes, so a mis-tuned schedule can never
    change results, only skip the optimization.
    """
    arrays = [(i, a) for i, a in enumerate(raw)
              if isinstance(a, np.ndarray)]
    if not arrays:
        return None
    shape = arrays[0][1].shape
    if len(shape) < 2 or any(a.shape != shape for _, a in arrays[1:]):
        return None
    rows = shape[0]
    per_row = int(np.prod(shape[1:], dtype=np.int64))
    tile_rows = max(1, tile_elems // max(per_row, 1))
    if rows <= tile_rows:
        return None

    outs: Optional[List[List[np.ndarray]]] = None
    for start in range(0, rows, tile_rows):
        stop = min(start + tile_rows, rows)
        tile_args = list(raw)
        for i, a in arrays:
            tile_args[i] = a[start:stop]
        result = kernel(tile_args)
        if outs is None:
            # first tile validates the static analysis dynamically:
            # every output must be row-shaped or tiling is off
            if len(result) != n_returns or any(
                    not isinstance(r, np.ndarray) or r.ndim < 1
                    or r.shape[0] != stop - start for r in result):
                return None
            outs = [[r] for r in result]
        else:
            for k, r in enumerate(result):
                outs[k].append(r)
    return [np.concatenate(chunks, axis=0) for chunks in outs]


def execute_group(node: Node, inputs: Sequence[object]) -> List[object]:
    """Run a ``prim::FusionGroup``: compile-once, launch-once."""
    sched = active_schedule()
    kernel = _group_kernel(node, sched)
    n_ops = node.attrs.get("num_member_ops", len(node.blocks[0].nodes))
    with obs_trace.span("kernel:fusion_group", cat="exec",
                        fused_ops=n_ops) as sp:
        raw = None
        args = [_unwrap(x) for x in inputs]
        if sched.tile_elems > 0 \
                and getattr(kernel, "__elementwise_safe__", False):
            pre_launch("fusion_group")  # one launch covers every tile
            raw = _tiled_launch(kernel, args, sched.tile_elems,
                                len(node.blocks[0].returns))
            if raw is not None and sp is not None:
                sp.args["tiled"] = True
            if raw is None:
                raw = kernel(args)
        else:
            raw = execute_kernel(kernel, args, "fusion_group")
        outputs = [_wrap(r) for r in raw]
        out_elems = sum(o.numel for o in outputs if isinstance(o, Tensor))
        profiler.record_launch("fusion_group",
                               nbytes=_io_bytes(inputs) + _io_bytes(outputs),
                               flops=out_elems * max(n_ops, 1),
                               fused_ops=n_ops)
    return outputs


def run_horizontal_loop(node: Node, max_trip: int, cond: bool,
                        carried: List[object],
                        captures: List[object]) -> List[object]:
    """Execute a ``horizontal`` ``prim::Loop`` as one mapped kernel.

    The body was verified pure and fusable by the parallelization pass;
    iterations run inside one launch.  Loop-carried state threads
    through sequentially (correct for any pure body; on real hardware
    the independent-slot case runs in parallel, which only changes time,
    not values).

    Under a schedule with ``hloop_unroll > 1``, blocks of that many
    iterations run through an unrolled kernel variant (which early-exits
    if the loop condition goes false mid-block); the remainder — and
    any trip within ``unroll`` of the cap — runs the plain body kernel,
    so trip counts and dynamic conditions stay exact.
    """
    body = node.blocks[0]
    sched = active_schedule()

    def _build():
        from ..ir.graph import free_values
        return compile_block(body, name="_hloop",
                             extra_inputs=free_values(body))

    kernel = _node_kernel(node, _build)
    unroll = sched.hloop_unroll
    kernel_u = None
    if unroll > 1 and max_trip >= unroll:
        def _build_u():
            from ..ir.graph import free_values
            return compile_block_unrolled(body, unroll, name="_hloop_u",
                                          extra_inputs=free_values(body),
                                          loop_order=sched.loop_order)
        kernel_u = _node_kernel(node, _build_u,
                                variant=("unroll", unroll,
                                         sched.loop_order))

    with obs_trace.span("kernel:parallel_loop", cat="exec",
                        max_trip=max_trip) as sp:
        state = [_unwrap(c) for c in carried]
        caps = [_unwrap(c) for c in captures]
        pre_launch("parallel_loop")  # one launch covers every iteration
        i = 0
        alive = bool(cond)
        while alive and i < max_trip:
            if kernel_u is not None and max_trip - i >= unroll:
                results = kernel_u([i] + state + caps)
                i += int(results[0])
                alive = bool(results[1])
                state = list(results[2:])
            else:
                results = kernel([i] + state + caps)
                alive = bool(results[0])
                state = list(results[1:])
                i += 1

        outputs = [_wrap(s) for s in state]
        n_ops = node.attrs.get("num_member_ops", len(body.nodes))
        if sp is not None:
            sp.args["trips"] = i
        # a zero-trip loop did no fused work: 0 ops, 0 flops (the
        # launch itself still happened and is recorded)
        out_elems = sum(o.numel for o in outputs if isinstance(o, Tensor))
        profiler.record_launch(
            "parallel_loop",
            nbytes=_io_bytes(carried) + _io_bytes(captures)
            + _io_bytes(outputs),
            flops=out_elems * max(n_ops, 1) * min(i, 1),
            fused_ops=n_ops * i)
    return outputs


def run_parallel_map(node: Node, inputs: List[object]) -> List[object]:
    """Execute a standalone ``prim::ParallelMap`` (trip, *captures).

    ``pmap_chunk`` batches that many independent iterations per
    compiled-kernel call (a chunked variant returns them as one flat
    tuple); the trip-count remainder runs the plain body kernel.
    """
    body = node.blocks[0]
    sched = active_schedule()
    kernel = _node_kernel(node, lambda: compile_block(body, name="_pmap"))
    trip = int(inputs[0])
    chunk = sched.pmap_chunk
    kernel_c = None
    if chunk > 1 and trip >= chunk:
        kernel_c = _node_kernel(
            node,
            lambda: compile_block_chunked(body, chunk, name="_pmap_c",
                                          loop_order=sched.loop_order),
            variant=("chunk", chunk, sched.loop_order))
    caps = [_unwrap(c) for c in inputs[1:]]
    n_ret = len(body.returns)
    with obs_trace.span("kernel:parallel_map", cat="exec", trip=trip):
        pre_launch("parallel_map")  # one launch covers the whole map
        per_iter = []
        i = 0
        while i < trip:
            if kernel_c is not None and trip - i >= chunk:
                flat = kernel_c([i] + caps)
                per_iter.extend(flat[k * n_ret:(k + 1) * n_ret]
                                for k in range(chunk))
                i += chunk
            else:
                per_iter.append(kernel([i] + caps))
                i += 1
        outputs = [_wrap(np.stack([r[k] for r in per_iter]))
                   for k in range(len(body.returns))]
        profiler.record_launch(
            "parallel_map",
            nbytes=_io_bytes(inputs) + _io_bytes(outputs),
            flops=sum(o.numel for o in outputs if isinstance(o, Tensor)),
            fused_ops=max(len(body.nodes), 1) * max(trip, 1))
    return outputs
