"""Execution of fusion groups and horizontally-parallelized loops.

Each ``prim::FusionGroup`` executes as *one* kernel launch; a loop
marked ``horizontal`` by the parallelization pass (paper §4.2.2)
executes all of its iterations inside a single launch — the graph-level
equivalent of mapping the fused loop body across the iteration space on
device.

Kernels compute on raw numpy arrays, so only the *materialized outputs*
(wrapped into Tensors by ``_wrap``) allocate ``Storage`` — and those
allocations route through the active :class:`~repro.runtime.storage.
MemoryPool` when the interpreter runs under a memory plan, which is how
fused kernels participate in buffer donation (a dying operand's bytes,
released just before the launch, serve the outputs).
"""

from __future__ import annotations

import threading
from typing import Callable, List, Sequence

import numpy as np

from ..faults import SITE_FUSION_COMPILE, maybe_inject
from ..ir.graph import Node
from ..obs import trace as obs_trace
from ..runtime import profiler
from ..runtime.tensor import Tensor
from .codegen import compile_block
from .kernels import execute_kernel, pre_launch

#: Guards lazy per-node kernel compilation: compiled graphs are shared
#: by concurrent serving workers, and without the lock two threads that
#: both observe ``attrs["kernel"] is None`` would compile the block
#: twice (wasted work, and a torn read of partially-populated attrs).
_kernel_lock = threading.Lock()


def _node_kernel(node: Node, build: Callable[[], object]) -> object:
    """The node's cached kernel, compiling once under the lock.

    Also the ``fusion_compile`` fault checkpoint: an injected
    :class:`~repro.errors.CompileError` raises before ``attrs`` is
    touched, so the node simply stays uncompiled — a later execution
    (e.g. on a retried rung) compiles it cleanly.
    """
    kernel = node.attrs.get("kernel")
    if kernel is None:
        with _kernel_lock:
            kernel = node.attrs.get("kernel")
            if kernel is None:
                with obs_trace.span("kernel:compile", cat="compile",
                                    op=node.op):
                    maybe_inject(SITE_FUSION_COMPILE, node.op)
                    kernel = build()
                    node.attrs["kernel"] = kernel
    return kernel


def _unwrap(x):
    return x._array if isinstance(x, Tensor) else x


def _wrap(arr):
    if isinstance(arr, np.ndarray):
        if arr.base is not None or not arr.flags.owndata:
            arr = np.array(arr, copy=True)
        return Tensor.from_array(arr, copy=False)
    if isinstance(arr, np.generic):
        return Tensor.from_array(np.asarray(arr), copy=False)
    return arr


def _io_bytes(values) -> int:
    total = 0
    for v in values:
        if isinstance(v, Tensor):
            total += v.nbytes
        elif isinstance(v, np.ndarray):
            total += v.nbytes
    return total


def execute_group(node: Node, inputs: Sequence[object]) -> List[object]:
    """Run a ``prim::FusionGroup``: compile-once, launch-once."""
    kernel = _node_kernel(
        node, lambda: compile_block(node.blocks[0], name="_fusion"))
    n_ops = node.attrs.get("num_member_ops", len(node.blocks[0].nodes))
    with obs_trace.span("kernel:fusion_group", cat="exec",
                        fused_ops=n_ops):
        raw = execute_kernel(kernel, [_unwrap(x) for x in inputs],
                             "fusion_group")
        outputs = [_wrap(r) for r in raw]
        out_elems = sum(o.numel for o in outputs if isinstance(o, Tensor))
        profiler.record_launch("fusion_group",
                               nbytes=_io_bytes(inputs) + _io_bytes(outputs),
                               flops=out_elems * max(n_ops, 1),
                               fused_ops=n_ops)
    return outputs


def run_horizontal_loop(node: Node, max_trip: int, cond: bool,
                        carried: List[object],
                        captures: List[object]) -> List[object]:
    """Execute a ``horizontal`` ``prim::Loop`` as one mapped kernel.

    The body was verified pure and fusable by the parallelization pass;
    iterations run inside one launch.  Loop-carried state threads
    through sequentially (correct for any pure body; on real hardware
    the independent-slot case runs in parallel, which only changes time,
    not values).
    """
    body = node.blocks[0]

    def _build():
        from ..ir.graph import free_values
        return compile_block(body, name="_hloop",
                             extra_inputs=free_values(body))

    kernel = _node_kernel(node, _build)

    with obs_trace.span("kernel:parallel_loop", cat="exec",
                        max_trip=max_trip) as sp:
        state = [_unwrap(c) for c in carried]
        caps = [_unwrap(c) for c in captures]
        pre_launch("parallel_loop")  # one launch covers every iteration
        i = 0
        alive = bool(cond)
        while alive and i < max_trip:
            results = kernel([i] + state + caps)
            alive = bool(results[0])
            state = list(results[1:])
            i += 1

        outputs = [_wrap(s) for s in state]
        n_ops = node.attrs.get("num_member_ops", len(body.nodes))
        if sp is not None:
            sp.args["trips"] = i
        profiler.record_launch(
            "parallel_loop",
            nbytes=_io_bytes(carried) + _io_bytes(captures)
            + _io_bytes(outputs),
            flops=sum(o.numel for o in outputs if isinstance(o, Tensor))
            * max(n_ops, 1),
            fused_ops=n_ops * max(i, 1))
    return outputs


def run_parallel_map(node: Node, inputs: List[object]) -> List[object]:
    """Execute a standalone ``prim::ParallelMap`` (trip, *captures)."""
    body = node.blocks[0]
    kernel = _node_kernel(node, lambda: compile_block(body, name="_pmap"))
    trip = int(inputs[0])
    caps = [_unwrap(c) for c in inputs[1:]]
    with obs_trace.span("kernel:parallel_map", cat="exec", trip=trip):
        pre_launch("parallel_map")  # one launch covers the whole map
        per_iter = [kernel([i] + caps) for i in range(trip)]
        outputs = [_wrap(np.stack([r[k] for r in per_iter]))
                   for k in range(len(body.returns))]
        profiler.record_launch(
            "parallel_map",
            nbytes=_io_bytes(inputs) + _io_bytes(outputs),
            flops=sum(o.numel for o in outputs if isinstance(o, Tensor)),
            fused_ops=max(len(body.nodes), 1) * max(trip, 1))
    return outputs
