"""Reference interpreter for graph-level IR.

Executes nodes against the imperative runtime, so an *unoptimized*
scripted graph performs exactly the kernel launches eager mode does —
which is the correct baseline semantics for TorchScript-style pipelines.
Fusion groups execute through their compiled kernel (one launch) when
the fuser attached one, else fall back to interpreting their body.

Host-side dispatch work is recorded per node via
``profiler.record_python`` so the analytical cost model can charge
interpreter overhead (and, for TorchDynamo-style pipelines, graph-break
overhead).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..ir.graph import Block, Graph, Node, Value
from ..ops import registry
from ..ops.schema import OpKind
from ..runtime import profiler


class InterpreterError(RuntimeError):
    """Raised on malformed graphs or arity mismatches during interpretation."""
    pass


Env = Dict[int, object]


def _read(env: Env, value: Value):
    try:
        return env[id(value)]
    except KeyError:
        raise InterpreterError(
            f"value %{value.name} read before definition") from None


def run_block(block: Block, env: Env) -> List[object]:
    """Execute a block's nodes in ``env``; return its return values."""
    for node in block.nodes:
        run_node(node, env)
    return [_read(env, r) for r in block.returns]


def run_node(node: Node, env: Env) -> None:
    """Execute one node, writing its results into ``env``."""
    op = node.op

    if op == "prim::Constant":
        env[id(node.output())] = node.attrs["value"]
        return

    profiler.record_python("interp_op")

    if op == "prim::If":
        profiler.record_python("branch")
        cond = bool(_read(env, node.input(0)))
        branch = node.blocks[0] if cond else node.blocks[1]
        results = run_block(branch, env)
        for out, res in zip(node.outputs, results):
            env[id(out)] = res
        return

    if op == "prim::Loop":
        max_trip = int(_read(env, node.input(0)))
        cond = bool(_read(env, node.input(1)))
        carried = [_read(env, v) for v in node.inputs[2:]]
        if node.attrs.get("horizontal"):
            from .fusion_runtime import run_horizontal_loop
            captures = [_read(env, v) for v in node.attrs["captures"]]
            results = run_horizontal_loop(node, max_trip, cond, carried,
                                          captures)
            for out, val in zip(node.outputs, results):
                env[id(out)] = val
            return
        body = node.blocks[0]
        i = 0
        while cond and i < max_trip:
            profiler.record_python("loop_iter")
            env[id(body.params[0])] = i
            for p, val in zip(body.params[1:], carried):
                env[id(p)] = val
            results = run_block(body, env)
            cond = bool(results[0])
            carried = results[1:]
            i += 1
        for out, val in zip(node.outputs, carried):
            env[id(out)] = val
        return

    if op == "prim::FusionGroup":
        from .fusion_runtime import execute_group
        results = execute_group(node, [_read(env, v) for v in node.inputs])
        for out, res in zip(node.outputs, results):
            env[id(out)] = res
        return

    if op == "prim::ParallelMap":
        from .fusion_runtime import run_parallel_map
        results = run_parallel_map(node, [_read(env, v)
                                          for v in node.inputs])
        for out, res in zip(node.outputs, results):
            env[id(out)] = res
        return

    if op == "prim::TupleUnpack":
        packed = _read(env, node.input(0))
        if len(node.outputs) > len(packed):
            raise InterpreterError("TupleUnpack arity mismatch")
        for out, res in zip(node.outputs, packed):
            env[id(out)] = res
        return

    if op == "tssa::update":
        raise InterpreterError(
            "tssa::update reached the interpreter; run the rename step of "
            "the TensorSSA conversion before executing")

    schema = registry.get(op)
    if schema.fn is None:
        raise InterpreterError(f"op {op} has no runtime implementation")
    args = [_read(env, v) for v in node.inputs]
    result = schema.fn(*args)
    if schema.num_outputs == 1:
        env[id(node.output())] = result
    else:
        if not isinstance(result, (tuple, list)):
            raise InterpreterError(f"{op} expected {schema.num_outputs} "
                                   f"results")
        for out, res in zip(node.outputs, result):
            env[id(out)] = res


def run_graph(graph: Graph, args: Sequence[object]) -> List[object]:
    """Execute a graph on ``args``; returns its outputs as a list."""
    if len(args) != len(graph.inputs):
        raise InterpreterError(
            f"graph {graph.name} expects {len(graph.inputs)} args, "
            f"got {len(args)}")
    env: Env = {}
    for p, a in zip(graph.inputs, args):
        env[id(p)] = a
    return run_block(graph.block, env)
