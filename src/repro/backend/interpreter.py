"""Reference interpreter for graph-level IR.

Executes nodes against the imperative runtime, so an *unoptimized*
scripted graph performs exactly the kernel launches eager mode does —
which is the correct baseline semantics for TorchScript-style pipelines.
Fusion groups execute through their compiled kernel (one launch) when
the fuser attached one, else fall back to interpreting their body.

Host-side dispatch work is recorded per node via
``profiler.record_python`` so the analytical cost model can charge
interpreter overhead (and, for TorchDynamo-style pipelines, graph-break
overhead).

When given a :class:`repro.memplan.MemoryPlan`, execution becomes
*plan-guided*: every tensor allocation routes through a
:class:`~repro.runtime.storage.MemoryPool`, dead lifetime classes are
released back to the pool at their planned death points (their
environment bindings are evicted too, so a planning bug surfaces as a
hard ``read before definition`` error rather than silent reuse of a
live buffer), and rotating loop-carried slots recycle the previous
iteration's generation at each back-edge.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from ..ir.graph import Block, Graph, Node, Value
from ..ops import registry
from ..ops.schema import OpKind
from ..runtime import profiler
from ..runtime.storage import MemoryPool, pool_scope
from ..runtime.tensor import Tensor


class InterpreterError(RuntimeError):
    """Raised on malformed graphs or arity mismatches during interpretation."""
    pass


Env = Dict[int, object]


class _PlanCtx:
    """Per-run state of plan-guided execution: the plan's schedules, the
    pool absorbing releases, and the ids of storages already released
    (a storage may back several values; it must release exactly once)."""

    __slots__ = ("plan", "pool", "released")

    def __init__(self, plan, pool: MemoryPool) -> None:
        self.plan = plan
        self.pool = pool
        self.released: Set[int] = set()


def _read(env: Env, value: Value):
    try:
        return env[id(value)]
    except KeyError:
        raise InterpreterError(
            f"value %{value.name} read before definition") from None


def _release_storages(cls, env: Env, ctx: _PlanCtx,
                      protected: Optional[Set[int]] = None) -> None:
    """Return a dead class's storage bytes to the pool (accounting only;
    env bindings are evicted separately so donors stay readable until
    their consumer has run)."""
    for v in cls.values:
        val = env.get(id(v))
        if not isinstance(val, Tensor):
            continue
        st = val.storage
        if st.id in ctx.released:
            continue
        if protected is not None and st.id in protected:
            continue
        ctx.released.add(st.id)
        ctx.pool.release(st.nbytes)


def _evict(cls, env: Env) -> None:
    """Drop a dead class's env bindings: any later read is a liveness
    bug and fails loudly instead of observing recycled memory."""
    for v in cls.values:
        env.pop(id(v), None)


def _release_after(node: Node, env: Env, ctx: _PlanCtx) -> None:
    """Process the plan's post-node releases.  Storages that ended up
    bound to the node's own outputs are protected: a zero-iteration
    ``prim::Loop`` passes carried-in tensors straight through, so the
    dying input class and the live output may share a buffer."""
    classes = ctx.plan.release_after.get(id(node))
    if not classes:
        return
    protected: Set[int] = set()
    for out in node.outputs:
        val = env.get(id(out))
        if isinstance(val, Tensor):
            protected.add(val.storage.id)
    for cls in classes:
        _release_storages(cls, env, ctx, protected)
        _evict(cls, env)


def _release_rotating(slots: Sequence[int], prev: List[object],
                      new: List[object], ctx: _PlanCtx) -> None:
    """Recycle the previous generation of rotating loop-carried slots.
    Guarded against the (liveness-excluded, but cheap to re-check) case
    of a new carried value aliasing the outgoing one."""
    protected = {val.storage.id for val in new if isinstance(val, Tensor)}
    for k in slots:
        if k >= len(prev):
            continue
        val = prev[k]
        if not isinstance(val, Tensor):
            continue
        st = val.storage
        if st.id not in ctx.released and st.id not in protected:
            ctx.released.add(st.id)
            ctx.pool.release(st.nbytes)


def run_block(block: Block, env: Env,
              ctx: Optional[_PlanCtx] = None) -> List[object]:
    """Execute a block's nodes in ``env``; return its return values."""
    for node in block.nodes:
        run_node(node, env, ctx)
    return [_read(env, r) for r in block.returns]


def run_node(node: Node, env: Env, ctx: Optional[_PlanCtx] = None) -> None:
    """Execute one node, writing its results into ``env``; with a plan
    context, apply the release schedule around the execution."""
    if ctx is None:
        _exec_node(node, env, ctx)
        return
    donated = ctx.plan.release_before.get(id(node))
    if donated:
        for cls in donated:
            # accounting first: the node's own outputs may take the bytes
            _release_storages(cls, env, ctx)
    _exec_node(node, env, ctx)
    if donated:
        for cls in donated:
            _evict(cls, env)
    _release_after(node, env, ctx)


def _exec_node(node: Node, env: Env, ctx: Optional[_PlanCtx]) -> None:
    """The op dispatch itself, shared by planned and unplanned runs."""
    op = node.op

    if op == "prim::Constant":
        env[id(node.output())] = node.attrs["value"]
        return

    profiler.record_python("interp_op")

    if op == "prim::If":
        profiler.record_python("branch")
        cond = bool(_read(env, node.input(0)))
        branch = node.blocks[0] if cond else node.blocks[1]
        results = run_block(branch, env, ctx)
        for out, res in zip(node.outputs, results):
            env[id(out)] = res
        return

    if op == "prim::Loop":
        max_trip = int(_read(env, node.input(0)))
        cond = bool(_read(env, node.input(1)))
        carried = [_read(env, v) for v in node.inputs[2:]]
        if node.attrs.get("horizontal"):
            from ..ir.graph import free_values
            from .fusion_runtime import run_horizontal_loop
            captures = [_read(env, v) for v in free_values(node.blocks[0])]
            results = run_horizontal_loop(node, max_trip, cond, carried,
                                          captures)
            for out, val in zip(node.outputs, results):
                env[id(out)] = val
            return
        body = node.blocks[0]
        rotating: Sequence[int] = ()
        if ctx is not None:
            rotating = ctx.plan.rotating_slots.get(id(node), ())
        i = 0
        while cond and i < max_trip:
            profiler.record_python("loop_iter")
            env[id(body.params[0])] = i
            for p, val in zip(body.params[1:], carried):
                env[id(p)] = val
            prev = carried
            results = run_block(body, env, ctx)
            cond = bool(results[0])
            carried = results[1:]
            if rotating and ctx is not None and i >= 1:
                # generation i-1 died at this back-edge; generation 0 is
                # skipped because the first binding is the outer init,
                # whose class the surrounding schedule owns
                _release_rotating(rotating, prev, carried, ctx)
            i += 1
        for out, val in zip(node.outputs, carried):
            env[id(out)] = val
        return

    if op == "prim::FusionGroup":
        from .fusion_runtime import execute_group
        results = execute_group(node, [_read(env, v) for v in node.inputs])
        for out, res in zip(node.outputs, results):
            env[id(out)] = res
        return

    if op == "prim::ParallelMap":
        from .fusion_runtime import run_parallel_map
        results = run_parallel_map(node, [_read(env, v)
                                          for v in node.inputs])
        for out, res in zip(node.outputs, results):
            env[id(out)] = res
        return

    if op == "prim::TupleUnpack":
        packed = _read(env, node.input(0))
        if len(node.outputs) > len(packed):
            raise InterpreterError("TupleUnpack arity mismatch")
        for out, res in zip(node.outputs, packed):
            env[id(out)] = res
        return

    if op == "tssa::update":
        raise InterpreterError(
            "tssa::update reached the interpreter; run the rename step of "
            "the TensorSSA conversion before executing")

    schema = registry.get(op)
    if schema.fn is None:
        raise InterpreterError(f"op {op} has no runtime implementation")
    args = [_read(env, v) for v in node.inputs]
    result = schema.fn(*args)
    if schema.num_outputs == 1:
        env[id(node.output())] = result
    else:
        if not isinstance(result, (tuple, list)):
            raise InterpreterError(f"{op} expected {schema.num_outputs} "
                                   f"results")
        for out, res in zip(node.outputs, result):
            env[id(out)] = res


def run_graph(graph: Graph, args: Sequence[object],
              plan=None) -> List[object]:
    """Execute a graph on ``args``; returns its outputs as a list.

    With ``plan`` (a :class:`repro.memplan.MemoryPlan` for this graph),
    the run allocates through a fresh :class:`MemoryPool` and releases
    buffers at the plan's death points, so the profiler's ``peak_bytes``
    reflects the planned working set instead of the sum of all
    intermediates.
    """
    if len(args) != len(graph.inputs):
        raise InterpreterError(
            f"graph {graph.name} expects {len(graph.inputs)} args, "
            f"got {len(args)}")
    env: Env = {}
    for p, a in zip(graph.inputs, args):
        env[id(p)] = a
    if plan is None:
        return run_block(graph.block, env)
    pool = MemoryPool()
    ctx = _PlanCtx(plan, pool)
    with pool_scope(pool):
        return run_block(graph.block, env, ctx)
