"""repro.backend — interpreter, kernel codegen, fusion runtime."""

from .codegen import CodegenError, compile_block
from .interpreter import InterpreterError, run_graph
from .kernels import OP_IMPLS

__all__ = ["run_graph", "InterpreterError", "compile_block",
           "CodegenError", "OP_IMPLS"]
