"""Numpy implementations of fusable ops, used inside compiled kernels.

These run *inside* a fusion group: no Tensor wrapping, no launch
recording — the whole group is one launch.  Semantics must match the
eager runtime exactly (fused == unfused is asserted by tests).

:func:`pre_launch` is the device-handoff fault checkpoint for compiled
kernels: it runs once per launch, *before* any member op computes, so
an injected :class:`~repro.errors.KernelError` models the launch
itself failing (no partial group output exists).  Eager/interpreted
launches check the same site in ``runtime/profiler.record_launch``.
"""

from __future__ import annotations

import numpy as np

from ..faults import SITE_KERNEL_LAUNCH, maybe_inject


def pre_launch(op: str) -> None:
    """``kernel_launch`` fault checkpoint at the moment a compiled
    kernel is handed to the (simulated) device."""
    maybe_inject(SITE_KERNEL_LAUNCH, op)


def execute_kernel(kernel, args, op: str):
    """Run one compiled kernel as one device launch, through the fault
    layer (failure raises before compute; latency sleeps before it)."""
    pre_launch(op)
    return kernel(args)


def _f32(out, *ins):
    """Match the runtime's promotion rule: stay in float32 unless an
    input was float64."""
    if out.dtype == np.float64 and not any(
            getattr(i, "dtype", None) == np.float64 for i in ins):
        return out.astype(np.float32)
    return out


def _norm_dim(dim, ndim):
    return dim + ndim if dim < 0 else dim


def _select(t, dim, index):
    dim = _norm_dim(int(dim), t.ndim)
    index = int(index)
    if index < 0:
        index += t.shape[dim]
    key = (slice(None),) * dim + (index,)
    return t[key]


def _slice(t, dim, start=0, end=None, step=1):
    dim = _norm_dim(int(dim), t.ndim)
    key = (slice(None),) * dim + (slice(start, end, step),)
    return t[key]


def _narrow(t, dim, start, length):
    return _slice(t, dim, int(start), int(start) + int(length), 1)


def _assign(base, src):
    out = np.array(base, copy=True)
    out[...] = np.asarray(src).astype(base.dtype, copy=False)
    return out


def _window_assign(base, src, key):
    out = np.array(base, copy=True)
    out[key] = np.asarray(src).astype(base.dtype, copy=False)
    return out


def _select_assign(base, src, dim, index):
    dim = _norm_dim(int(dim), base.ndim)
    index = int(index)
    if index < 0:
        index += base.shape[dim]
    return _window_assign(base, src, (slice(None),) * dim + (index,))


def _slice_assign(base, src, dim, start=0, end=None, step=1):
    dim = _norm_dim(int(dim), base.ndim)
    return _window_assign(base, src,
                          (slice(None),) * dim + (slice(start, end, step),))


def _narrow_assign(base, src, dim, start, length):
    return _slice_assign(base, src, dim, int(start), int(start) + int(length))


def _reshape_assign(base, src, shape):
    return np.asarray(src).astype(base.dtype, copy=False).reshape(base.shape)


def _permute_assign(base, src, dims):
    inverse = np.argsort(np.asarray(dims))
    return np.ascontiguousarray(
        np.asarray(src).astype(base.dtype, copy=False).transpose(
            tuple(inverse)))


def _transpose_assign(base, src, dim0, dim1):
    dims = list(range(base.ndim))
    d0, d1 = _norm_dim(int(dim0), base.ndim), _norm_dim(int(dim1), base.ndim)
    dims[d0], dims[d1] = dims[d1], dims[d0]
    return np.ascontiguousarray(
        np.asarray(src).astype(base.dtype, copy=False).transpose(tuple(dims)))


def _shape_like_assign(base, src, *_ignored):
    return np.asarray(src).astype(base.dtype, copy=False).reshape(base.shape)


def _squeeze(t, dim=None):
    if dim is None:
        return t.squeeze()
    dim = _norm_dim(int(dim), t.ndim)
    return t.squeeze(dim) if t.shape[dim] == 1 else t


def _flatten(t, start_dim=0, end_dim=-1):
    start = _norm_dim(int(start_dim), t.ndim)
    end = _norm_dim(int(end_dim), t.ndim)
    merged = 1
    for s in t.shape[start:end + 1]:
        merged *= s
    return t.reshape(t.shape[:start] + (merged,) + t.shape[end + 1:])


def _clamp(t, lo=None, hi=None):
    return np.clip(t, -np.inf if lo is None else lo,
                   np.inf if hi is None else hi)


def _sigmoid(t):
    return _f32(1.0 / (1.0 + np.exp(-t)), t)


def _masked_fill(t, mask, value):
    return np.where(np.broadcast_to(mask, np.shape(t)),
                    np.asarray(value, dtype=np.asarray(t).dtype), t)


def _to(t, dtype):
    return np.asarray(t).astype(dtype.np)


def _expand(t, shape):
    target = tuple(t.shape[i] if s == -1 else s for i, s in enumerate(shape))
    return np.broadcast_to(t, target)


#: op name -> numpy-level implementation
OP_IMPLS = {
    # host-side scalar arithmetic (free inside a compiled kernel)
    "prim::add": lambda a, b: a + b,
    "prim::sub": lambda a, b: a - b,
    "prim::mul": lambda a, b: a * b,
    "prim::truediv": lambda a, b: a / b,
    "prim::floordiv": lambda a, b: a // b,
    "prim::mod": lambda a, b: a % b,
    "prim::pow": lambda a, b: a ** b,
    "prim::neg": lambda a: -a,
    "prim::gt": lambda a, b: a > b,
    "prim::lt": lambda a, b: a < b,
    "prim::ge": lambda a, b: a >= b,
    "prim::le": lambda a, b: a <= b,
    "prim::eq": lambda a, b: a == b,
    "prim::ne": lambda a, b: a != b,
    "prim::and": lambda a, b: a and b,
    "prim::or": lambda a, b: a or b,
    "prim::not": lambda a: not a,
    "prim::min": min,
    "prim::max": max,
    # elementwise arithmetic
    "aten::add": lambda a, b: _f32(np.add(a, b), a, b),
    "aten::sub": lambda a, b: _f32(np.subtract(a, b), a, b),
    "aten::mul": lambda a, b: _f32(np.multiply(a, b), a, b),
    "aten::div": lambda a, b: _f32(np.true_divide(a, b), a, b),
    "aten::pow": lambda a, b: _f32(np.power(a, b), a, b),
    "aten::maximum": lambda a, b: _f32(np.maximum(a, b), a, b),
    "aten::minimum": lambda a, b: _f32(np.minimum(a, b), a, b),
    "aten::neg": lambda a: np.negative(a),
    "aten::abs": lambda a: np.abs(a),
    "aten::exp": lambda a: _f32(np.exp(a), a),
    "aten::log": lambda a: _f32(np.log(a), a),
    "aten::sqrt": lambda a: _f32(np.sqrt(a), a),
    "aten::sigmoid": _sigmoid,
    "aten::tanh": lambda a: _f32(np.tanh(a), a),
    "aten::relu": lambda a: np.maximum(a, 0),
    "aten::floor": lambda a: np.floor(a),
    "aten::ceil": lambda a: np.ceil(a),
    "aten::clamp": _clamp,
    "aten::where": lambda c, a, b: _f32(np.where(c, a, b), a, b),
    "aten::clone": lambda a: np.array(a, copy=True),
    "aten::to": _to,
    "aten::masked_fill": _masked_fill,
    # shape-propagating fills (functional forms of fill_/zero_)
    "aten::full_like": lambda t, v: np.full(np.shape(t), v,
                                            dtype=np.asarray(t).dtype),
    "aten::zeros_like": lambda t: np.zeros(np.shape(t),
                                           dtype=np.asarray(t).dtype),
    "aten::ones_like": lambda t: np.ones(np.shape(t),
                                         dtype=np.asarray(t).dtype),
    # comparisons / logic
    "aten::gt": np.greater, "aten::lt": np.less,
    "aten::ge": np.greater_equal, "aten::le": np.less_equal,
    "aten::eq": np.equal, "aten::ne": np.not_equal,
    "aten::logical_and": np.logical_and,
    "aten::logical_or": np.logical_or,
    "aten::logical_not": np.logical_not,
    # views (pure in a functionalized region)
    "aten::alias": lambda t: t,
    "aten::select": _select,
    "aten::slice": _slice,
    "aten::narrow": _narrow,
    "aten::reshape": lambda t, shape: np.reshape(t, tuple(shape)),
    "aten::view": lambda t, shape: np.reshape(t, tuple(shape)),
    "aten::permute": lambda t, dims: np.transpose(t, tuple(dims)),
    "aten::transpose": lambda t, d0, d1: np.swapaxes(t, int(d0), int(d1)),
    "aten::squeeze": _squeeze,
    "aten::unsqueeze": lambda t, dim: np.expand_dims(
        t, _norm_dim(int(dim), t.ndim + 1)),
    "aten::expand": _expand,
    "aten::flatten": _flatten,
    # immut Access
    "immut::alias": lambda t: np.array(t, copy=True),
    "immut::select": _select,
    "immut::slice": _slice,
    "immut::narrow": _narrow,
    "immut::reshape": lambda t, shape: np.reshape(t, tuple(shape)),
    "immut::permute": lambda t, dims: np.transpose(t, tuple(dims)),
    "immut::transpose": lambda t, d0, d1: np.swapaxes(t, int(d0), int(d1)),
    "immut::squeeze": _squeeze,
    "immut::unsqueeze": lambda t, dim: np.expand_dims(
        t, _norm_dim(int(dim), t.ndim + 1)),
    "immut::expand": _expand,
    "immut::flatten": _flatten,
    # immut Assign
    "immut::assign": _assign,
    "immut::select_assign": _select_assign,
    "immut::slice_assign": _slice_assign,
    "immut::narrow_assign": _narrow_assign,
    "immut::reshape_assign": _reshape_assign,
    "immut::permute_assign": _permute_assign,
    "immut::transpose_assign": _transpose_assign,
    "immut::squeeze_assign": _shape_like_assign,
    "immut::unsqueeze_assign": _shape_like_assign,
    "immut::flatten_assign": _shape_like_assign,
}
