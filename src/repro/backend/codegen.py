"""Kernel code generation: a block of fusable ops -> one Python callable.

This plays the role of PyTorch NNC in the paper's stack: a fusion
group's body is lowered to straight-line code over numpy arrays and
compiled once (``compile``/``exec``), so executing the group costs a
single host call — one "kernel launch".

Generated source for a two-op group looks like::

    def _kernel(_args):
        v_b, v_i = _args
        t0 = _OPS['immut::select'](v_b, 0, v_i)
        t1 = _OPS['aten::add'](t0, 1)
        return (t1,)

Schedule hooks (:mod:`repro.tune`) enter here in three ways:

* ``loop_order`` reorders the emitted statements (``"program"`` keeps
  the pass ordering, ``"consumer"`` emits depth-first from the returns
  so each value is computed right before its first use) — a pure
  permutation of independent pure statements, bit-exact by construction;
* :func:`compile_block_unrolled` emits a horizontal-loop body ``u``
  times with carried state threaded through and an early exit between
  iterations, so one kernel call executes up to ``u`` trips;
* :func:`compile_block_chunked` emits a ``prim::ParallelMap`` body
  ``c`` times on consecutive indices, returning the per-iteration
  results as one flat tuple.

Every compiled kernel carries ``__elementwise_safe__``: True only when
the body is provably row-independent along axis 0 (whitelisted
elementwise ops, no container constants, no captured objects), which is
what licenses the runtime's ``tile_elems`` row tiling.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from ..ir.graph import Block, Node, Value
from .kernels import OP_IMPLS


class CodegenError(RuntimeError):
    """Raised when a fusion-group body contains an op the kernel codegen cannot compile."""
    pass


#: Ops whose outputs are computed independently per element (given all
#: array operands share one shape), so slicing every array input along
#: axis 0 and concatenating the outputs reproduces the unsliced result.
#: Views, reductions, matmuls, and the immut window ops are excluded —
#: they couple rows.  ``prim::`` scalar arithmetic is row-independent
#: trivially (it never touches the tiled axis).
ELEMENTWISE_SAFE_OPS = frozenset(op for op in OP_IMPLS
                                 if op.startswith("prim::")) | frozenset({
    "aten::add", "aten::sub", "aten::mul", "aten::div", "aten::pow",
    "aten::maximum", "aten::minimum", "aten::neg", "aten::abs",
    "aten::exp", "aten::log", "aten::sqrt", "aten::sigmoid",
    "aten::tanh", "aten::relu", "aten::floor", "aten::ceil",
    "aten::clamp", "aten::where", "aten::clone",
    "aten::full_like", "aten::zeros_like", "aten::ones_like",
    "aten::gt", "aten::lt", "aten::ge", "aten::le",
    "aten::eq", "aten::ne",
    "aten::logical_and", "aten::logical_or", "aten::logical_not",
})


def _const_literal(value) -> str:
    """Python source for an inlinable constant.

    Containers are validated *recursively*: a list or tuple is only
    inlinable when every element is, otherwise ``repr`` would emit
    source like ``[Tensor(...)]`` or ``[<dtype f32>]`` that either
    fails to compile or silently rebuilds the wrong object.  Callers
    catch :class:`CodegenError` and capture the value by reference
    instead.
    """
    if isinstance(value, (int, float, bool)) or value is None:
        return repr(value)
    if isinstance(value, str):
        return repr(value)
    if isinstance(value, (list, tuple)):
        elems = [_const_literal(v) for v in value]
        if isinstance(value, tuple):
            inner = ", ".join(elems) + ("," if len(elems) == 1 else "")
            return f"({inner})"
        return "[" + ", ".join(elems) + "]"
    raise CodegenError(f"cannot inline constant {value!r}")


def _ordered_nodes(block: Block, loop_order: str = "program") -> List[Node]:
    """The statement order a schedule asks for.

    ``"program"`` is the order the fusion pass left; ``"consumer"`` is
    a depth-first post-order from the returns (producers emitted
    immediately before their first consumer, shortening live ranges).
    Both orders contain exactly the block's nodes and respect def-use —
    they are bit-exact permutations of each other.
    """
    if loop_order == "program" or len(block.nodes) < 2:
        return list(block.nodes)
    if loop_order != "consumer":
        raise CodegenError(f"unknown loop order {loop_order!r}")
    producer: Dict[int, Node] = {}
    for node in block.nodes:
        for out in node.outputs:
            producer[id(out)] = node
    ordered: List[Node] = []
    visited = set()

    def visit(node: Node) -> None:
        if id(node) in visited:
            return
        visited.add(id(node))
        for v in node.inputs:
            dep = producer.get(id(v))
            if dep is not None:
                visit(dep)
        ordered.append(node)

    for ret in block.returns:
        dep = producer.get(id(ret))
        if dep is not None:
            visit(dep)
    # keep dead-but-present nodes (program order) so emission never
    # loses a statement the default kernel would have run
    for node in block.nodes:
        visit(node)
    return ordered


class _Emitter:
    """Shared statement emission across the plain, unrolled, and
    chunked kernel shapes; tracks whether the emitted body stayed
    inside the elementwise-safe fragment."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self.captured: Dict[str, object] = {}
        self._capture_ids: Dict[int, str] = {}
        self._tmp = 0
        self.elementwise_safe = True

    def capture(self, value) -> str:
        cid = self._capture_ids.get(id(value))
        if cid is None:
            cid = f"_c{len(self.captured)}"
            self.captured[cid] = value
            self._capture_ids[id(value)] = cid
        return cid

    def emit(self, nodes: Sequence[Node], names: Dict[int, str]) -> None:
        """Append statements for ``nodes`` into ``names`` (mutated:
        node outputs gain their temp names)."""
        for node in nodes:
            if node.op == "prim::Constant":
                value = node.attrs["value"]
                try:
                    literal = _const_literal(value)
                    if isinstance(value, (list, tuple)):
                        # an inline container could broadcast against
                        # a tiled axis; keep tiling off such kernels
                        self.elementwise_safe = False
                except CodegenError:
                    literal = self.capture(value)
                    self.elementwise_safe = False
                names[id(node.output())] = literal
                continue
            if node.op not in OP_IMPLS:
                raise CodegenError(f"op {node.op} is not compilable")
            if node.op not in ELEMENTWISE_SAFE_OPS:
                self.elementwise_safe = False
            args = ", ".join(_name_of(names, v) for v in node.inputs)
            out = f"t{self._tmp}"
            self._tmp += 1
            names[id(node.output())] = out
            self.lines.append(f"    {out} = _OPS[{node.op!r}]({args})")

    def finish(self, name: str, header: str, source_lines: List[str],
               elementwise: bool) -> Callable:
        source = header + "\n".join(source_lines) + "\n"
        scope = {"_OPS": OP_IMPLS, **self.captured}
        code = compile(source, f"<fusion:{name}>", "exec")
        exec(code, scope)  # noqa: S102 - JIT compilation of our own source
        fn = scope[name]
        fn.__source__ = source
        fn.__elementwise_safe__ = elementwise
        return fn


def _bind_params(params: Sequence[Value],
                 names: Dict[int, str]) -> Optional[str]:
    for i, p in enumerate(params):
        names[id(p)] = f"v{i}"
    if not params:
        return None
    unpack = ", ".join(names[id(p)] for p in params)
    return (f"    {unpack}{',' if len(params) == 1 else ''}"
            f" = _args")


def compile_block(block: Block, name: str = "_kernel",
                  extra_inputs: Sequence[Value] = (),
                  loop_order: str = "program") -> Callable:
    """Compile a fusion-group body into ``fn(args) -> tuple``.

    ``args`` must follow ``block.params`` order, then ``extra_inputs``
    (free values captured from enclosing scopes — used by horizontal
    loops).  Non-inlinable constants (tensors, dtypes) are captured by
    object reference.  ``loop_order`` selects the statement order (see
    :func:`_ordered_nodes`); both orders produce bit-identical results.
    """
    em = _Emitter()
    names: Dict[int, str] = {}
    params = list(block.params) + list(extra_inputs)
    bind = _bind_params(params, names)
    if bind is not None:
        em.lines.append(bind)

    em.emit(_ordered_nodes(block, loop_order), names)

    rets = ", ".join(_name_of(names, r) for r in block.returns)
    em.lines.append(
        f"    return ({rets}{',' if len(block.returns) == 1 else ''})")

    return em.finish(name, f"def {name}(_args):\n", em.lines,
                     em.elementwise_safe and bool(params))


def compile_block_unrolled(block: Block, factor: int,
                           name: str = "_hloop_u",
                           extra_inputs: Sequence[Value] = (),
                           loop_order: str = "program") -> Callable:
    """Compile a horizontal-loop body unrolled ``factor`` times.

    The body's calling convention is ``(index, *carried, *captures) ->
    (continue, *carried)``; the unrolled kernel keeps the argument
    shape but returns ``(trips_done, continue, *carried)`` and
    early-exits between emitted iterations when the body's continue
    flag goes false — so a dynamic loop condition stays exact.  Callers
    must only invoke it when at least ``factor`` trips remain before
    ``max_trip`` (the remainder runs on the plain kernel).
    """
    if factor < 2:
        raise CodegenError("unroll factor must be >= 2")
    if not block.params:
        raise CodegenError("horizontal loop body must take the index")

    em = _Emitter()
    names: Dict[int, str] = {}
    params = list(block.params) + list(extra_inputs)
    bind = _bind_params(params, names)
    if bind is not None:
        em.lines.append(bind)
    index_name = names[id(block.params[0])]
    carried_params = list(block.params[1:])
    n_carried = len(carried_params)

    nodes = _ordered_nodes(block, loop_order)
    # carried state names entering the current iteration
    state = [names[id(p)] for p in carried_params]
    cond_name = ""
    for k in range(factor):
        iter_names = dict(names)
        iter_names[id(block.params[0])] = index_name if k == 0 \
            else f"({index_name} + {k})"
        for p, live in zip(carried_params, state):
            iter_names[id(p)] = live
        em.emit(nodes, iter_names)
        cond_name = _name_of(iter_names, block.returns[0])
        state = [_name_of(iter_names, r) for r in block.returns[1:]]
        assert len(state) == n_carried
        tail = "".join(f", {s}" for s in state)
        if k < factor - 1:
            em.lines.append(f"    if not {cond_name}:")
            em.lines.append(f"        return ({k + 1}, {cond_name}{tail})")
    em.lines.append(f"    return ({factor}, {cond_name}{tail})")

    return em.finish(name, f"def {name}(_args):\n", em.lines, False)


def compile_block_chunked(block: Block, chunk: int,
                          name: str = "_pmap_c",
                          loop_order: str = "program") -> Callable:
    """Compile a ``prim::ParallelMap`` body ``chunk`` iterations per
    call.

    The body's convention is ``(index, *captures) -> returns``; the
    chunked kernel evaluates indices ``i, i+1, ..., i+chunk-1`` and
    returns all results as one flat, iteration-major tuple (``chunk *
    len(returns)`` entries).  Iterations of a parallel map are
    independent by construction, so no early exit is needed; callers
    handle the trip-count remainder with the plain kernel.
    """
    if chunk < 2:
        raise CodegenError("chunk must be >= 2")
    if not block.params:
        raise CodegenError("parallel-map body must take the index")

    em = _Emitter()
    names: Dict[int, str] = {}
    bind = _bind_params(list(block.params), names)
    if bind is not None:
        em.lines.append(bind)
    index_name = names[id(block.params[0])]

    nodes = _ordered_nodes(block, loop_order)
    flat: List[str] = []
    for k in range(chunk):
        iter_names = dict(names)
        iter_names[id(block.params[0])] = index_name if k == 0 \
            else f"({index_name} + {k})"
        em.emit(nodes, iter_names)
        flat.extend(_name_of(iter_names, r) for r in block.returns)
    em.lines.append(f"    return ({', '.join(flat)}"
                    f"{',' if len(flat) == 1 else ''})")

    return em.finish(name, f"def {name}(_args):\n", em.lines, False)


def _name_of(names: Dict[int, str], v: Value) -> str:
    try:
        return names[id(v)]
    except KeyError:
        raise CodegenError(f"value %{v.name} not available inside the "
                           f"fusion group (not a param, member output, "
                           f"or constant)") from None


def estimate_group_cost(block: Block,
                        inputs: Sequence[object]) -> Dict[str, int]:
    """Rough bytes/flops for one group launch, for the cost model."""
    from ..runtime.tensor import Tensor
    nbytes = sum(t.nbytes for t in inputs if isinstance(t, Tensor))
    n_ops = sum(1 for n in block.nodes if n.op != "prim::Constant")
    return {"bytes": nbytes, "ops": n_ops}
