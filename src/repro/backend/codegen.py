"""Kernel code generation: a block of fusable ops -> one Python callable.

This plays the role of PyTorch NNC in the paper's stack: a fusion
group's body is lowered to straight-line code over numpy arrays and
compiled once (``compile``/``exec``), so executing the group costs a
single host call — one "kernel launch".

Generated source for a two-op group looks like::

    def _kernel(_args):
        v_b, v_i = _args
        t0 = _OPS['immut::select'](v_b, 0, v_i)
        t1 = _OPS['aten::add'](t0, 1)
        return (t1,)
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from ..ir.graph import Block, Value
from .kernels import OP_IMPLS


class CodegenError(RuntimeError):
    """Raised when a fusion-group body contains an op the kernel codegen cannot compile."""
    pass


def _const_literal(value) -> str:
    if isinstance(value, (int, float, bool)) or value is None:
        return repr(value)
    if isinstance(value, str):
        return repr(value)
    if isinstance(value, (list, tuple)):
        return repr(value)
    raise CodegenError(f"cannot inline constant {value!r}")


def compile_block(block: Block, name: str = "_kernel",
                  extra_inputs: Sequence[Value] = ()) -> Callable:
    """Compile a fusion-group body into ``fn(args) -> tuple``.

    ``args`` must follow ``block.params`` order, then ``extra_inputs``
    (free values captured from enclosing scopes — used by horizontal
    loops).  Non-inlinable constants (tensors, dtypes) are captured by
    object reference.
    """
    names: Dict[int, str] = {}
    lines: List[str] = []
    captured: Dict[str, object] = {}

    params = list(block.params) + list(extra_inputs)
    for i, p in enumerate(params):
        names[id(p)] = f"v{i}"
    unpack = ", ".join(names[id(p)] for p in params)
    if params:
        lines.append(f"    {unpack}{',' if len(params) == 1 else ''}"
                     f" = _args")

    tmp = 0
    for node in block.nodes:
        if node.op == "prim::Constant":
            value = node.attrs["value"]
            try:
                names[id(node.output())] = _const_literal(value)
            except CodegenError:
                cname = f"_c{len(captured)}"
                captured[cname] = value
                names[id(node.output())] = cname
            continue
        if node.op not in OP_IMPLS:
            raise CodegenError(f"op {node.op} is not compilable")
        args = ", ".join(_name_of(names, v) for v in node.inputs)
        out = f"t{tmp}"
        tmp += 1
        names[id(node.output())] = out
        lines.append(f"    {out} = _OPS[{node.op!r}]({args})")

    rets = ", ".join(_name_of(names, r) for r in block.returns)
    lines.append(f"    return ({rets}{',' if len(block.returns) == 1 else ''})")

    source = f"def {name}(_args):\n" + "\n".join(lines) + "\n"
    scope = {"_OPS": OP_IMPLS, **captured}
    code = compile(source, f"<fusion:{name}>", "exec")
    exec(code, scope)  # noqa: S102 - JIT compilation of our own source
    fn = scope[name]
    fn.__source__ = source
    return fn


def _name_of(names: Dict[int, str], v: Value) -> str:
    try:
        return names[id(v)]
    except KeyError:
        raise CodegenError(f"value %{v.name} not available inside the "
                           f"fusion group (not a param, member output, "
                           f"or constant)") from None


def estimate_group_cost(block: Block,
                        inputs: Sequence[object]) -> Dict[str, int]:
    """Rough bytes/flops for one group launch, for the cost model."""
    from ..runtime.tensor import Tensor
    nbytes = sum(t.nbytes for t in inputs if isinstance(t, Tensor))
    n_ops = sum(1 for n in block.nodes if n.op != "prim::Constant")
    return {"bytes": nbytes, "ops": n_ops}
