"""TensorSSA conversion — the paper's Algorithm 1.

Three phases over a graph in TorchScript-style IR:

1. **RewriteMutation** (paper §4.1.1) — for each Mutate statement, in
   program order:

   * *pass-up*: walk the view chain from the mutated view ``v`` up to
     the origin tensor ``t``, inserting ``immut::*_assign`` operators
     that build a new version of ``t``;
   * *pass-down*: re-derive every view of ``t`` whose definition
     dominates the mutation as an ``immut::*`` Access from the new
     version, emitting ``tssa::update(new, old)`` annotations.

2. **BlockPropagation** (paper §4.1.2) — every update whose new value is
   defined in a deeper block than its old value is threaded out through
   the control-flow nodes: block returns + node outputs (and, for loops,
   carried inputs + block params), with fresh updates marking each hop.

3. **Renaming** — an environment-threading walk replaces every use of
   ``old`` with ``new`` after each ``tssa::update(new, old)``, resolves
   block returns to the latest version, then deletes the annotations and
   the original Mutate statements.

Mutated *graph inputs* keep their caller-visible semantics through an
epilogue ``aten::copy_(input, final_version)`` appended at graph end
(outside any fusion region).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..analysis.alias import AliasGraph, Mutation, TSet
from ..analysis.dominance import node_dominates
from ..ir import types as T
from ..ir.graph import Block, Graph, Node, Value
from ..ops import registry
from ..ops.schema import OpKind


@dataclass
class ConversionReport:
    """What the conversion did (and did not) functionalize."""

    rewritten: List[str] = field(default_factory=list)
    skipped: List[Tuple[str, str]] = field(default_factory=list)  # (origin, why)
    copied_back_inputs: List[str] = field(default_factory=list)

    @property
    def num_rewritten(self) -> int:
        return len(self.rewritten)


class _Converter:
    def __init__(self, graph: Graph, intra_block_only: bool = False) -> None:
        self.graph = graph
        self.alias = AliasGraph(graph)
        self.report = ConversionReport()
        self.intra_block_only = intra_block_only
        self._mutants_to_remove: List[Node] = []
        # Program positions over the *original* graph: inserted pure ops
        # never consult these (they reference explicit values), so the
        # snapshot stays valid throughout the rewrite.
        self.alias._ensure_positions()
        self._pos: Dict[int, int] = self.alias._entry_index
        self._exit: Dict[int, int] = self.alias._exit_index
        # view value -> later mutations whose pass-up chain passes
        # through it (those chains reference the original name)
        self._chain_users: Dict[int, List[Node]] = {}
        for mut in self.alias.mutations:
            cur = mut.target
            while id(cur) in self.alias.view_base:
                self._chain_users.setdefault(id(cur), []).append(mut.node)
                cur = self.alias.view_base[id(cur)]
        self._loop_sets: Dict[int, frozenset] = {}

    def _loop_set(self, node: Node) -> frozenset:
        cached = self._loop_sets.get(id(node))
        if cached is not None:
            return cached
        loops = set()
        block = node.owning_block
        while block is not None and block.owning_node is not None:
            owner = block.owning_node
            if owner.op == "prim::Loop":
                loops.add(id(owner))
            block = owner.owning_block
        result = frozenset(loops)
        self._loop_sets[id(node)] = result
        return result

    def _def_loop_set(self, value: Value) -> frozenset:
        if value.is_param:
            owner = value.param_block.owning_node
            if owner is None:
                return frozenset()
            loops = set(self._loop_set(owner))
            if owner.op == "prim::Loop":
                loops.add(id(owner))  # body params rebind per iteration
            return frozenset(loops)
        if value.node is None or value.node.owning_block is None:
            return frozenset()
        return self._loop_set(value.node)

    def _runs_after(self, user: Node, N: Node,
                    value_def_loops: frozenset) -> bool:
        """Can ``user`` observe ``N``'s effect on a *stale* value?

        True when the user is later in program order, or when a shared
        loop re-executes it after ``N``'s iteration *and* the value was
        computed outside that loop (in-loop values are recomputed fresh
        each iteration, so their earlier uses never see stale data).

        Nodes inserted by earlier rewrites (no recorded position) sit at
        earlier mutation sites and reference values that renaming
        resolves via their own preceding updates — never ours."""
        pos = self._pos.get(id(user))
        if pos is None:
            return False  # inserted by an earlier rewrite
        if pos > self._pos[id(N)]:
            return True
        common = self._loop_set(user) & self._loop_set(N)
        return bool(common - value_def_loops)

    def _used_after(self, value: Value, N: Node) -> bool:
        """Does ``value`` have any consumer that may run after mutation
        ``N`` (block returns, later nodes, loop wrap-around, or later
        mutations' pass-up chains)?  If not, re-accessing it at ``N``
        would be dead code."""
        def_loops = self._def_loop_set(value)
        for use in value.uses:
            user = use.user
            if isinstance(user, Block):
                return True  # block/graph returns run after everything
            if self._runs_after(user, N, def_loops):
                return True
        for chain_user in self._chain_users.get(id(value), ()):
            if chain_user is not N and \
                    self._runs_after(chain_user, N, def_loops):
                return True
        return False

    def _subtree_needed(self, x: Value, N: Node) -> bool:
        if self._used_after(x, N):
            return True
        for vnode in self.alias.view_children.get(id(x), []):
            if vnode is N:
                continue
            if vnode.owning_block is None or not self._dominates(vnode, N):
                continue
            if self._subtree_needed(vnode.output(), N):
                return True
        return False

    # ------------------------------------------------------------------
    # Phase 1: RewriteMutation
    # ------------------------------------------------------------------

    def rewrite_all(self) -> None:
        tsets = self.alias.tsets()
        eligible_by_node: Dict[int, TSet] = {}
        for tset in tsets:
            if not tset.eligible:
                self.report.skipped.append((tset.origin.name, tset.reason))
                continue
            if self.intra_block_only and any(
                    tset.origin.defining_block() is not m.node.owning_block
                    for m in tset.mutations):
                # Data-flow-only functionalization (functorch/Inductor
                # style): a mutation crossing control flow stays
                # imperative — and then the *whole* T-set must stay
                # imperative, because functionalizing only some writes
                # to a storage while others still hit the old buffer
                # would desynchronize the versions.
                self.report.skipped.append(
                    (tset.origin.name, "crosses a control-flow boundary "
                     "(intra-block mode)"))
                continue
            for mut in tset.mutations:
                eligible_by_node[id(mut.node)] = tset
        # program order over all mutations
        for node in list(self.graph.walk()):
            tset = eligible_by_node.get(id(node))
            if tset is not None:
                self.rewrite_mutation(Mutation(node, node.input(0)), tset)

    def _insert_before(self, anchor: Node, node: Node) -> Node:
        # cursor-based insertion: rewrite_mutation resolves the anchor's
        # index once and bumps it per insert (list.index is O(n) and the
        # rewrite inserts thousands of nodes into unrolled blocks)
        block = anchor.owning_block
        block.insert(self._cursor, node)
        self._cursor += 1
        return node

    def _emit_update(self, anchor: Node, new: Value, old: Value) -> None:
        upd = self.graph.create("tssa::update", [new, old])
        self._insert_before(anchor, upd)

    def _dominates(self, a: Node, b: Node) -> bool:
        """Position-based dominance over the original graph (O(depth))."""
        ea, xa = self._pos[id(a)], self._exit[id(a)]
        eb = self._pos[id(b)]
        if ea <= eb <= xa:
            return True  # a contains b
        if eb < ea:
            return False
        blk = b.owning_block
        while blk is not None:
            if blk is a.owning_block:
                return True
            owner = blk.owning_node
            blk = owner.owning_block if owner is not None else None
        return False

    def rewrite_mutation(self, mut: Mutation, tset: TSet) -> None:
        N = mut.node
        v = mut.target
        origin = tset.origin
        self._cursor = N.owning_block.nodes.index(N)

        # --- the functional value of the mutation -----------------------
        if N.op == "aten::copy_":
            source = N.input(1)
        else:
            fop = registry.get(N.op).functional_op
            fnode = self.graph.create(fop, list(N.inputs), ["fv"],
                                      [T.TensorType()])
            self._insert_before(N, fnode)
            source = fnode.output()

        # --- pass-up ------------------------------------------------------
        # innermost: a fresh version of the view itself
        assign = self.graph.create("immut::assign", [v, source],
                                   [v.name.split(".")[0]], [T.TensorType()])
        self._insert_before(N, assign)
        cur, cur_new = v, assign.output()
        while cur is not origin:
            base = self.alias.view_base[id(cur)]
            vnode = self.alias.view_node[id(cur)]
            if vnode.kind is OpKind.VIEW:
                op = registry.get(vnode.op).assign_op
                node = self.graph.create(
                    op, [base, cur_new] + list(vnode.inputs[1:]),
                    [base.name.split(".")[0]], [T.TensorType()])
            else:
                # identity alias (output of another mutating op): the new
                # content of `cur` becomes the whole new content of base
                node = self.graph.create("immut::assign", [base, cur_new],
                                         [base.name.split(".")[0]],
                                         [T.TensorType()])
            self._insert_before(N, node)
            cur, cur_new = base, node.output()

        # --- pass-down ------------------------------------------------------
        self._traversal(origin, cur_new, N)

        self._mutants_to_remove.append(N)
        self.report.rewritten.append(N.op)

    def _traversal(self, x: Value, x_new: Value, N: Node) -> None:
        """Paper Algorithm 1, ``Traversal``: update + re-access the view
        tree under ``x`` at the mutation site ``N``."""
        self._emit_update(N, x_new, x)
        for vnode in self.alias.view_children.get(id(x), []):
            out = vnode.output()
            if vnode is N:
                # the mutate statement's own output: identity alias of
                # the freshly assigned view
                self._traversal(out, x_new, N)
                continue
            if vnode.owning_block is None or not self._dominates(vnode, N):
                continue
            if vnode.kind is OpKind.VIEW:
                if not self._subtree_needed(out, N):
                    continue  # nothing downstream reads this view again
                op = registry.get(vnode.op).access_op
                acc = self.graph.create(
                    op, [x_new] + list(vnode.inputs[1:]),
                    [out.name.split(".")[0]], [T.TensorType()])
                self._insert_before(N, acc)
                self._traversal(out, acc.output(), N)
            else:
                # an earlier mutating op's output: identity of x
                self._traversal(out, x_new, N)

    # ------------------------------------------------------------------
    # Phase 2: BlockPropagation
    # ------------------------------------------------------------------

    def propagate_blocks(self) -> None:
        propagated: Dict[Tuple[int, int], Value] = {}
        for upd in [n for n in self.graph.walk() if n.op == "tssa::update"]:
            new, old = upd.input(0), upd.input(1)
            block = new.defining_block()
            end_block = old.defining_block()
            while block is not end_block:
                node = block.owning_node
                if node is None:
                    raise RuntimeError(
                        f"update({new.name}, {old.name}): old value's "
                        f"block is not an ancestor of new value's block")
                key = (id(node), id(old))
                if key not in propagated:
                    propagated[key] = self._thread_through(node, block, old)
                block = node.owning_block

    def _thread_through(self, node: Node, block: Block,
                        old: Value) -> Value:
        """Thread ``old``'s new version out of ``node`` via ``block``."""
        base = old.name.split(".")[0]
        if node.op == "prim::Loop":
            # carried slot: input / param / return / output stay aligned
            # because each list is appended at the end.
            node.add_input(old)
            param = node.blocks[0].add_param(base, old.type)
            head = self.graph.create("tssa::update", [param, old])
            node.blocks[0].insert(0, head)
            block.add_return(old)
        elif node.op == "prim::If":
            for b in node.blocks:
                # Both branches return `old`; renaming resolves each to
                # that branch's latest version (paper line 31's "if not
                # mutated in the sibling" falls out automatically).
                b.add_return(old)
        else:
            raise RuntimeError(f"cannot propagate updates through "
                               f"{node.op}")
        out = node.add_output(base, old.type)
        tail = self.graph.create("tssa::update", [out, old])
        node.owning_block.insert_after(node, tail)
        return out

    # ------------------------------------------------------------------
    # Phase 3: Renaming
    # ------------------------------------------------------------------

    def rename(self) -> Dict[int, Value]:
        top_env: Dict[int, Value] = {}
        self._rename_block(self.graph.block, top_env)
        # drop the annotations, then the (now unused) mutate statements
        from ..ir.graph import bulk_destroy
        bulk_destroy([n for n in self.graph.walk()
                      if n.op == "tssa::update"])
        bulk_destroy(self._mutants_to_remove)
        return top_env

    @staticmethod
    def _resolve(env: Dict[int, Value], v: Value) -> Value:
        seen = set()
        while id(v) in env and env[id(v)] is not v:
            if id(v) in seen:
                break
            seen.add(id(v))
            v = env[id(v)]
        return v

    def _rename_block(self, block: Block, env: Dict[int, Value]) -> None:
        for node in list(block.nodes):
            if node.op == "tssa::update":
                new = self._resolve(env, node.input(0))
                old = node.input(1)
                env[id(old)] = new
                continue
            for i, inp in enumerate(node.inputs):
                r = self._resolve(env, inp)
                if r is not inp:
                    node.set_input(i, r)
            for inner in node.blocks:
                self._rename_block(inner, dict(env))
        for i, ret in enumerate(list(block.returns)):
            r = self._resolve(env, ret)
            if r is not ret:
                block.set_return(i, r)

    # ------------------------------------------------------------------
    # Epilogue: preserve caller-visible input mutation
    # ------------------------------------------------------------------

    def copy_back_inputs(self, top_env: Dict[int, Value]) -> None:
        for inp in self.graph.inputs:
            final = self._resolve(top_env, inp)
            if final is not inp:
                sink = self.graph.create("aten::copy_", [inp, final],
                                         [inp.name.split(".")[0]],
                                         [T.TensorType()])
                self.graph.block.append(sink)
                self.report.copied_back_inputs.append(inp.name)

    # ------------------------------------------------------------------

    def run(self) -> ConversionReport:
        self.rewrite_all()
        if self.report.rewritten:
            self.propagate_blocks()
        top_env = self.rename()
        self.copy_back_inputs(top_env)
        return self.report


def convert_to_tensorssa(graph: Graph,
                         intra_block_only: bool = False) -> ConversionReport:
    """Functionalize ``graph`` in place (paper Algorithm 1).

    ``intra_block_only=True`` restricts the rewrite to mutations whose
    origin tensor lives in the same block — the data-flow-only
    functionalization that tracing compilers (functorch / TorchInductor)
    achieve, used by the Dynamo baseline pipeline."""
    return _Converter(graph, intra_block_only=intra_block_only).run()
