"""repro.tensorssa — the paper's core contribution (Algorithm 1)."""

from .convert import ConversionReport, convert_to_tensorssa

__all__ = ["convert_to_tensorssa", "ConversionReport"]
