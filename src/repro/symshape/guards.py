"""Shape guards: the predicates under which a compiled artifact is valid.

A :class:`Guard` is one predicate over a family's symbolic dims —
``s0 == 16`` (specialization equality, recorded when a tracing pass
folds a size query into a constant), ``s0 >= 2`` (the implicit range of
every duck symbol, since extents 0/1 specialize), or ``s0 % 8 == 0``
(alignment/bucketing divisibility).  A :class:`GuardSet` collects them
deduplicated and answers the only question that matters at cache-lookup
time: *does this concrete binding satisfy every guard?* — if yes, the
family's artifact serves the new shape with zero compiles; if a guard
flips, the caller records a ``guard_miss`` and compiles a new family.

Symbol-symbol equalities (``s0 == s1``) never appear here explicitly:
duck shaping merges equal extents into one symbol, so those equalities
are enforced structurally by
:meth:`repro.symshape.family.ShapeFamily.bind`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from .symbols import SymInt

__all__ = ["Guard", "GuardSet", "guard_eq", "guard_ge", "guard_mod"]

#: guard kinds: lhs == rhs · lhs >= rhs · lhs % rhs == aux
KIND_EQ = "eq"
KIND_GE = "ge"
KIND_MOD = "mod"


class Guard:
    """One predicate over symbolic dims; immutable and hashable."""

    __slots__ = ("kind", "lhs", "rhs", "aux", "_hash")

    def __init__(self, kind: str, lhs: SymInt, rhs: int,
                 aux: int = 0) -> None:
        if kind not in (KIND_EQ, KIND_GE, KIND_MOD):
            raise ValueError(f"unknown guard kind {kind!r}")
        if kind == KIND_MOD and rhs <= 0:
            raise ValueError("mod guard needs a positive divisor")
        self.kind = kind
        self.lhs = lhs
        self.rhs = int(rhs)
        self.aux = int(aux)
        self._hash = hash((kind, lhs, self.rhs, self.aux))

    def holds(self, env: Dict[str, int]) -> bool:
        """Evaluate the predicate under a concrete symbol binding."""
        try:
            value = self.lhs.evaluate(env)
        except KeyError:
            return False
        if self.kind == KIND_EQ:
            return value == self.rhs
        if self.kind == KIND_GE:
            return value >= self.rhs
        return value % self.rhs == self.aux

    def __eq__(self, other) -> bool:
        if not isinstance(other, Guard):
            return NotImplemented
        return (self.kind == other.kind and self.lhs == other.lhs
                and self.rhs == other.rhs and self.aux == other.aux)

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        if self.kind == KIND_EQ:
            return f"{self.lhs!r} == {self.rhs}"
        if self.kind == KIND_GE:
            return f"{self.lhs!r} >= {self.rhs}"
        return f"{self.lhs!r} % {self.rhs} == {self.aux}"


def guard_eq(lhs: SymInt, rhs: int) -> Guard:
    """Specialization equality: ``lhs == rhs``."""
    return Guard(KIND_EQ, lhs, rhs)


def guard_ge(lhs: SymInt, rhs: int) -> Guard:
    """Lower bound: ``lhs >= rhs``."""
    return Guard(KIND_GE, lhs, rhs)


def guard_mod(lhs: SymInt, divisor: int, remainder: int = 0) -> Guard:
    """Divisibility: ``lhs % divisor == remainder``."""
    return Guard(KIND_MOD, lhs, divisor, remainder)


class GuardSet:
    """An ordered, deduplicated collection of guards.

    Order is insertion order (stable for display and for ``check``'s
    "first failing guard" report); a trivially-constant guard that
    already holds is dropped at ``add`` time, and a constant guard that
    can never hold raises immediately — recording it would mean the
    artifact is valid for *no* shape, which is a compiler bug.
    """

    def __init__(self, guards: Iterable[Guard] = ()) -> None:
        self._guards: List[Guard] = []
        self._seen = set()
        for g in guards:
            self.add(g)

    def add(self, guard: Guard) -> bool:
        """Record a guard; returns True if it was new."""
        if guard.lhs.is_const:
            if guard.holds({}):
                return False  # vacuous: drop
            raise ValueError(f"unsatisfiable constant guard: {guard!r}")
        if guard in self._seen:
            return False
        self._seen.add(guard)
        self._guards.append(guard)
        return True

    def check(self, env: Dict[str, int]) -> Optional[Guard]:
        """The first guard the binding violates, or None if all hold."""
        for g in self._guards:
            if not g.holds(env):
                return g
        return None

    def __iter__(self):
        return iter(self._guards)

    def __len__(self) -> int:
        return len(self._guards)

    def __contains__(self, guard: Guard) -> bool:
        return guard in self._seen

    def describe(self) -> str:
        """Human-readable conjunction, e.g. ``s0 >= 2 and s0 % 8 == 0``."""
        if not self._guards:
            return "(no guards)"
        return " and ".join(repr(g) for g in self._guards)

    def __repr__(self) -> str:
        return f"GuardSet[{self.describe()}]"
