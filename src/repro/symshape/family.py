"""Shape families: one compiled artifact per guard-delimited shape set.

A :class:`ShapeFamily` is minted the first time a ``(pipeline,
workload, platform)`` triple compiles for a shape signature: the
example extents are duck-shaped into symbols
(:class:`~repro.symshape.symbols.SizeVarAllocator`), every minted
symbol gets the implicit ``s >= 2`` range guard (extents 0/1
specialize to constants instead), and any guards recorded *during*
compilation — a pass folding ``aten::size`` into a constant, a
bucketing divisibility hint — narrow the family further.  Afterwards a
concrete signature belongs to the family iff it *binds* structurally
(constants match, each symbol takes one consistent extent) and every
guard holds under that binding.

:class:`FamilyTable` owns the families of one
:class:`~repro.eval.harness.CompileCache` and classifies each lookup:

``hit``
    an existing family admits the signature — the cached artifact
    serves it with zero compiles;
``new``
    no family even binds structurally — a cold compile;
``guard_miss``
    a family binds but a guard flips — a recompile forced by
    specialization, counted separately so cache stats can tell "never
    saw this program" from "saw it, but the artifact was too narrow".

Guard *recording* uses a context variable: the compilation owner wraps
the compile in :func:`compiling_family`, and passes deep in the stack
(``passes/specialize.py``) call :func:`record_specialization_guard`
without threading the family through every signature.  A family is
``pending`` until its compile finishes (:meth:`ShapeFamily.seal`); an
unsealed family only admits its own seed signature, because its guard
set is still growing and admitting a second shape mid-compile could
validate it against guards that do not exist yet.
"""

from __future__ import annotations

import contextlib
import threading
from contextvars import ContextVar
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..obs import trace as obs_trace
from .guards import Guard, GuardSet, guard_eq, guard_ge, guard_mod
from .symbols import SizeVarAllocator, SymInt

__all__ = ["ShapeFamily", "FamilyTable", "FamilyStats",
           "symbolize_signature", "compiling_family", "active_family",
           "record_specialization_guard"]

#: signature entries are either a dim tuple (tensor) or a scalar
SymSignature = Tuple[Union[Tuple[SymInt, ...], SymInt, object], ...]


def symbolize_signature(signature: tuple) -> Tuple[SymSignature,
                                                   Dict[str, int]]:
    """Duck-shape one concrete shape signature.

    ``signature`` is the harness's ``_shape_signature`` form: a tuple
    per argument that is either a tuple of ints (tensor shape) or a
    scalar.  Tensor extents and plain-int scalars ``>= 2`` share one
    symbol per distinct value; bools, 0/1 ints, and non-int scalars
    stay literal (they select branches or broadcast, so they split
    families structurally).  Returns the symbolic signature and the
    symbol -> seed-extent bindings.
    """
    alloc = SizeVarAllocator()
    out: List[object] = []
    for entry in signature:
        if isinstance(entry, tuple):
            out.append(alloc.symbolize_shape(entry))
        elif isinstance(entry, bool) or not isinstance(entry, int):
            out.append(entry)
        else:
            out.append(alloc[entry])
    return tuple(out), alloc.bindings()


class ShapeFamily:
    """One symbolic signature plus the guards its artifact relies on."""

    def __init__(self, family_id: str, prefix: tuple,
                 signature: SymSignature, seed_signature: tuple,
                 seed_env: Dict[str, int]) -> None:
        self.family_id = family_id
        self.prefix = prefix
        self.signature = signature
        self.seed_signature = seed_signature
        self.guards = GuardSet()
        self.pending = True
        self.admitted = 0
        self._lock = threading.RLock()
        self._max_extents: Dict[str, int] = dict(seed_env)
        # every duck symbol was minted from an extent >= 2 (0/1
        # specialize), and the artifact may rely on that range
        for name in sorted(seed_env):
            self.guards.add(guard_ge(SymInt.sym(name), 2))

    # -- structural binding --------------------------------------------

    def bind(self, signature: tuple) -> Optional[Dict[str, int]]:
        """Bind a concrete signature against the symbolic one.

        Returns symbol -> extent, or None when the signature does not
        match structurally (arity/rank/constant/consistency).  Two
        *distinct* symbols may bind the same extent — duck shaping only
        records the equalities the artifact was traced with, it never
        requires seed-distinct extents to stay distinct.
        """
        if len(signature) != len(self.signature):
            return None
        env: Dict[str, int] = {}
        for sym_entry, conc_entry in zip(self.signature, signature):
            if isinstance(sym_entry, tuple):
                if not isinstance(conc_entry, tuple) \
                        or len(conc_entry) != len(sym_entry):
                    return None
                if not _bind_dims(sym_entry, conc_entry, env):
                    return None
            elif isinstance(sym_entry, SymInt):
                if isinstance(conc_entry, bool) \
                        or not isinstance(conc_entry, int):
                    return None
                if not _bind_dims((sym_entry,), (conc_entry,), env):
                    return None
            else:
                if sym_entry != conc_entry \
                        or isinstance(sym_entry, bool) \
                        != isinstance(conc_entry, bool):
                    return None
        return env

    def admits(self, signature: tuple
               ) -> Tuple[Optional[Dict[str, int]], Optional[Guard]]:
        """``(env, None)`` when the family serves this signature;
        ``(None, None)`` on structural mismatch; ``(env, guard)`` when
        it binds but ``guard`` rejects it (a guard miss)."""
        env = self.bind(signature)
        if env is None:
            return None, None
        with self._lock:
            failing = self.guards.check(env)
        if failing is not None:
            return env, failing
        return env, None

    # -- lifecycle ------------------------------------------------------

    def seal(self) -> None:
        """Mark compilation finished: guards are complete, the family
        may now admit signatures other than its seed."""
        with self._lock:
            self.pending = False

    def record_guard(self, guard: Guard) -> bool:
        """Add one guard discovered during compilation; True if new."""
        with self._lock:
            return self.guards.add(guard)

    def observe(self, env: Dict[str, int]) -> None:
        """Track the largest extent each symbol has served (the memory
        planner's per-family size bound)."""
        with self._lock:
            self.admitted += 1
            for name, extent in env.items():
                if extent > self._max_extents.get(name, 0):
                    self._max_extents[name] = extent

    # -- introspection --------------------------------------------------

    def symbol_at(self, arg_index: int,
                  dim_index: Optional[int] = None) -> Optional[SymInt]:
        """The dim at ``args[arg_index].shape[dim_index]`` (or the
        scalar argument itself when ``dim_index`` is None), as a
        :class:`SymInt`; None when out of range or non-symbolic."""
        if not 0 <= arg_index < len(self.signature):
            return None
        entry = self.signature[arg_index]
        if dim_index is None:
            return entry if isinstance(entry, SymInt) else None
        if not isinstance(entry, tuple) \
                or not 0 <= dim_index < len(entry):
            return None
        return entry[dim_index]

    def extent_bounds(self) -> Dict[str, int]:
        """symbol name -> max extent observed (a copy)."""
        with self._lock:
            return dict(self._max_extents)

    def input_symshapes(self) -> List[Optional[Tuple[SymInt, ...]]]:
        """Per-argument symbolic shapes (None for scalar arguments)."""
        return [entry if isinstance(entry, tuple) else None
                for entry in self.signature]

    def shape_key(self) -> tuple:
        """Structural identity of the symbolic signature, stable across
        processes: every symbolic dim renders as ``"*"``, constants
        stay concrete.  ``family_id`` is a table-local counter (the
        same program mints ``f0`` in every process), so persistent
        stores — the tuning DB keys dynamic-shape traffic on this —
        must use the structure, never the id."""
        def render(entry):
            if isinstance(entry, tuple):
                return tuple(render(e) for e in entry)
            if isinstance(entry, SymInt):
                return entry.value if entry.is_const else "*"
            return entry
        return tuple(render(e) for e in self.signature)

    def describe(self) -> str:
        """One line: id, symbolic signature, and guard conjunction."""
        sig = ", ".join(
            "x".join(repr(d) for d in e) if isinstance(e, tuple)
            else repr(e) for e in self.signature)
        return f"{self.family_id}: ({sig}) where {self.guards.describe()}"

    def __repr__(self) -> str:
        return f"ShapeFamily<{self.describe()}>"


def _bind_dims(sym_dims: Sequence[SymInt], extents: Sequence[int],
               env: Dict[str, int]) -> bool:
    """Extend ``env`` dim-by-dim; False on any structural conflict."""
    for dim, extent in zip(sym_dims, extents):
        if not isinstance(extent, int) or isinstance(extent, bool):
            return False
        if dim.is_const:
            if dim.value != extent:
                return False
        else:
            bound = env.get(dim.name)
            if bound is None:
                # degenerate extents never bind a symbol: the symbol's
                # artifact was traced for the generic (>= 2) case
                if extent < 2:
                    return False
                env[dim.name] = extent
            elif bound != extent:
                return False
    return True


class FamilyStats:
    """Atomic snapshot of a table's per-epoch counters."""

    __slots__ = ("hits", "news", "guard_misses", "families")

    def __init__(self, hits: int, news: int, guard_misses: int,
                 families: int) -> None:
        self.hits = hits
        self.news = news
        self.guard_misses = guard_misses
        self.families = families

    def to_dict(self) -> Dict[str, int]:
        """Plain-dict form for JSON reports."""
        return {"hits": self.hits, "news": self.news,
                "guard_misses": self.guard_misses,
                "families": self.families}

    def __repr__(self) -> str:
        return (f"FamilyStats(hits={self.hits}, news={self.news}, "
                f"guard_misses={self.guard_misses}, "
                f"families={self.families})")


class FamilyTable:
    """Thread-safe registry of shape families for one compile cache."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._families: Dict[tuple, List[ShapeFamily]] = {}
        self._next_id = 0
        self.hits = 0
        self.news = 0
        self.guard_misses = 0

    def resolve(self, prefix: tuple, signature: tuple,
                mod_hints: Sequence[Tuple[int, int, int]] = ()
                ) -> Tuple[ShapeFamily, str]:
        """Classify one lookup; returns ``(family, outcome)``.

        ``outcome`` is ``"hit"`` (an existing family admits the
        signature), ``"new"`` (nothing bound structurally — mint a
        family), or ``"guard_miss"`` (bound but guard-rejected — mint a
        narrower sibling and count the forced recompile).
        ``mod_hints`` are divisibility facts the caller already knows —
        ``(arg_index, dim_index, divisor)`` triples, e.g. bucketed
        extents are always ``% bucket_min == 0`` — recorded as mod
        guards on a freshly minted family.
        """
        with obs_trace.span("symshape:resolve", cat="symshape",
                            prefix=str(prefix)) as sp:
            with self._lock:
                guard_rejected = False
                for family in self._families.get(prefix, ()):
                    if family.pending \
                            and signature != family.seed_signature:
                        continue
                    env, failing = family.admits(signature)
                    if env is None:
                        continue
                    if failing is not None:
                        guard_rejected = True
                        continue
                    family.observe(env)
                    self.hits += 1
                    if sp is not None:
                        sp.args["outcome"] = "hit"
                        sp.args["family"] = family.family_id
                    return family, "hit"
                sym_sig, seed_env = symbolize_signature(signature)
                family = ShapeFamily(
                    family_id=f"f{self._next_id}", prefix=prefix,
                    signature=sym_sig, seed_signature=signature,
                    seed_env=seed_env)
                self._next_id += 1
                for arg_index, dim_index, divisor in mod_hints:
                    sym = family.symbol_at(arg_index, dim_index)
                    if sym is not None and sym.is_symbol:
                        family.record_guard(guard_mod(sym, divisor))
                family.observe(seed_env)
                self._families.setdefault(prefix, []).append(family)
                outcome = "guard_miss" if guard_rejected else "new"
                if guard_rejected:
                    self.guard_misses += 1
                else:
                    self.news += 1
                if sp is not None:
                    sp.args["outcome"] = outcome
                    sp.args["family"] = family.family_id
                return family, outcome

    def adopt(self, family: ShapeFamily) -> bool:
        """Register an externally restored family (artifact warm start).

        The family keeps its serialized id so cache keys minted from it
        keep resolving; ``_next_id`` advances past any numeric id so
        families minted later never collide.  Returns False (and leaves
        the table unchanged) when a family with the same id already
        lives under the prefix — warm starts are idempotent.
        """
        with self._lock:
            siblings = self._families.setdefault(family.prefix, [])
            if any(f.family_id == family.family_id for f in siblings):
                return False
            siblings.append(family)
            fid = family.family_id
            if fid.startswith("f") and fid[1:].isdigit():
                self._next_id = max(self._next_id, int(fid[1:]) + 1)
            return True

    def peek(self, prefix: tuple, signature: tuple
             ) -> Optional[ShapeFamily]:
        """The family that would serve a signature, without minting one
        or moving any counter (the executor's "is an artifact already
        cached for this shape?" probe)."""
        with self._lock:
            for family in self._families.get(prefix, ()):
                if family.pending and signature != family.seed_signature:
                    continue
                env, failing = family.admits(signature)
                if env is not None and failing is None:
                    return family
        return None

    def families_for(self, prefix: tuple) -> List[ShapeFamily]:
        """The families minted under one prefix (a copy)."""
        with self._lock:
            return list(self._families.get(prefix, ()))

    def all_families(self) -> List[ShapeFamily]:
        """Every family in the table (a copy)."""
        with self._lock:
            return [f for fams in self._families.values() for f in fams]

    def snapshot(self) -> FamilyStats:
        """Counters plus family count, read atomically."""
        with self._lock:
            count = sum(len(v) for v in self._families.values())
            return FamilyStats(hits=self.hits, news=self.news,
                               guard_misses=self.guard_misses,
                               families=count)

    def clear(self) -> None:
        """Drop all families and zero the counters (epoch boundary)."""
        with self._lock:
            self._families.clear()
            self.hits = 0
            self.news = 0
            self.guard_misses = 0


#: the family whose compile is currently on this (context-local) stack
_ACTIVE_FAMILY: ContextVar[Optional[ShapeFamily]] = \
    ContextVar("repro_symshape_active_family", default=None)


@contextlib.contextmanager
def compiling_family(family: Optional[ShapeFamily]):
    """Scope during which passes may record guards onto ``family``."""
    token = _ACTIVE_FAMILY.set(family)
    try:
        yield family
    finally:
        _ACTIVE_FAMILY.reset(token)


def active_family() -> Optional[ShapeFamily]:
    """The family being compiled on this context, if any."""
    return _ACTIVE_FAMILY.get()


def record_specialization_guard(arg_index: int,
                                dim_index: Optional[int],
                                value: int) -> bool:
    """Record ``dim == value`` on the active family (no-op without one).

    Called by shape-specializing passes when they fold a size query or
    a scalar input into a constant: the fold is only sound while that
    dim stays ``value``, so the family must re-check it on every
    lookup.  Returns True when a new guard was recorded.
    """
    family = active_family()
    if family is None:
        return False
    sym = family.symbol_at(arg_index, dim_index)
    if sym is None or not sym.is_symbol:
        return False  # already a constant: the fold is family-wide
    return family.record_guard(guard_eq(sym, int(value)))
