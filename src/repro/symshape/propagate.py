"""Best-effort symbolic shape propagation over the graph IR.

:func:`annotate_symbolic_shapes` pushes a family's symbolic input
shapes (:meth:`~repro.symshape.family.ShapeFamily.input_symshapes`)
forward through the graph and stores the result in a side table
``graph._symshapes`` (``id(value) -> tuple of dims``, each dim a
:class:`~repro.symshape.symbols.SymInt` or a plain int, or None when
that dim is unknown).  The table is deliberately *not* written into
``Value.type``: IR types round-trip through the printer/parser, and
symbolic dims would not survive the trip.

The rules are conservative — anything not understood simply stays
unannotated.  That is sound because the only consumer that prices
bytes, the memory planner's best-fit hint
(:func:`repro.memplan.planner._static_nbytes`), treats a missing or
partial shape as "size unknown" and the runtime pool re-fits by actual
bytes; symbolic hints can only improve slot packing, never correctness.

Scalar integer values are propagated through the same table (as
0-d "shapes" are not: scalars live in their own map) so that
``aten::size``/``prim::ListConstruct``/``aten::zeros`` chains produce
symbolic allocation shapes — the main source of intermediate-buffer
extents in the TensorSSA pipelines.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..ir.graph import Block, Graph, Node, Value
from .symbols import DimLike, SymInt

__all__ = ["annotate_symbolic_shapes", "symbolic_shape_of",
           "symbolic_nbytes"]

#: a propagated shape: per-dim SymInt | int | None (unknown dim)
SymShape = Tuple[Optional[DimLike], ...]

#: output shape == (common) input shape; scalars ride along free
_SAME_SHAPE_OPS = frozenset({
    "aten::sigmoid", "aten::tanh", "aten::relu", "aten::exp",
    "aten::log", "aten::neg", "aten::abs", "aten::sqrt", "aten::add",
    "aten::sub", "aten::mul", "aten::div", "aten::pow",
    "aten::maximum", "aten::minimum", "aten::softmax", "aten::clone",
    "aten::full_like", "aten::to", "aten::alias", "immut::alias",
})

#: functional assignment forms: output shape == destination (input 0)
_DEST_SHAPE_OPS = frozenset({
    "immut::assign", "immut::select_assign", "immut::slice_assign",
    "immut::narrow_assign", "immut::reshape_assign",
    "immut::permute_assign", "immut::transpose_assign",
    "immut::squeeze_assign", "immut::unsqueeze_assign",
    "immut::flatten_assign", "aten::copy_",
})

_DTYPE_BYTES = {"float32": 4, "float64": 8, "int64": 8, "int32": 4,
                "bool": 1}


def annotate_symbolic_shapes(graph: Graph,
                             input_shapes: Sequence[Optional[SymShape]]
                             ) -> Dict[int, SymShape]:
    """Propagate symbolic input shapes; returns and caches the table.

    ``input_shapes`` has one entry per graph input: a tuple of dims
    for tensor inputs, None for scalars.  The result is stored as
    ``graph._symshapes`` for the memory planner.
    """
    shapes: Dict[int, SymShape] = {}
    scalars: Dict[int, DimLike] = {}
    for value, shape in zip(graph.inputs, input_shapes):
        if shape is not None:
            shapes[id(value)] = tuple(shape)
    _walk_block(graph.block, shapes, scalars)
    graph._symshapes = shapes
    return shapes


def symbolic_shape_of(graph: Graph, value: Value) -> Optional[SymShape]:
    """The propagated shape of one value, if any was recorded."""
    table = getattr(graph, "_symshapes", None)
    if table is None:
        return None
    return table.get(id(value))


def symbolic_nbytes(shape: Optional[SymShape], dtype: Optional[str],
                    env: Dict[str, int]) -> Optional[int]:
    """Concrete byte size of a propagated shape under a symbol binding
    (e.g. a family's max-extent bounds); None when any dim is unknown
    or a symbol is unbound."""
    if shape is None:
        return None
    numel = 1
    for dim in shape:
        if dim is None:
            return None
        if isinstance(dim, SymInt):
            try:
                dim = dim.evaluate(env)
            except (KeyError, ZeroDivisionError):
                return None
        numel *= int(dim)
    return numel * _DTYPE_BYTES.get(dtype or "float32", 4)


# -- propagation engine -------------------------------------------------


def _walk_block(block: Block, shapes: Dict[int, SymShape],
                scalars: Dict[int, DimLike]) -> None:
    for node in block.nodes:
        _infer_node(node, shapes, scalars)


def _infer_node(node: Node, shapes: Dict[int, SymShape],
                scalars: Dict[int, DimLike]) -> None:
    op = node.op
    if op == "prim::Constant":
        _infer_constant(node, shapes, scalars)
        return
    if op in ("prim::Loop", "prim::If", "prim::FusionGroup",
              "prim::ParallelMap"):
        _infer_control(node, shapes, scalars)
        return
    outs = node.outputs
    if not outs:
        return
    rule = _RULES.get(op)
    if rule is not None:
        rule(node, shapes, scalars)
        return
    if op in _DEST_SHAPE_OPS and node.inputs:
        dest = shapes.get(id(node.input(0)))
        if dest is not None:
            shapes[id(outs[0])] = dest
        return
    if op in _SAME_SHAPE_OPS:
        known = [shapes[id(v)] for v in node.inputs
                 if id(v) in shapes]
        if known and all(k == known[0] for k in known):
            shapes[id(outs[0])] = known[0]


def _infer_constant(node: Node, shapes, scalars) -> None:
    value = node.attrs.get("value")
    out = node.output()
    if isinstance(value, bool):
        return
    if isinstance(value, int):
        scalars[id(out)] = value
    elif hasattr(value, "shape"):
        shapes[id(out)] = tuple(int(d) for d in value.shape)


def _const_or_scalar(value: Value, scalars) -> Optional[DimLike]:
    """An input's integer value: a tracked scalar, or a Constant."""
    got = scalars.get(id(value))
    if got is not None:
        return got
    node = value.node
    if node is not None and node.op == "prim::Constant":
        payload = node.attrs.get("value")
        if isinstance(payload, int) and not isinstance(payload, bool):
            return payload
    return None


def _as_int(dim: Optional[DimLike]) -> Optional[int]:
    if isinstance(dim, SymInt):
        return dim.value if dim.is_const else None
    return dim


def _infer_control(node: Node, shapes, scalars) -> None:
    op = node.op
    if op == "prim::Loop":
        # inputs (max_trip, init_cond, *carried);
        # params (i, *carried); returns (next_cond, *carried)
        body = node.block()
        carried = list(node.inputs[2:])
        for param, init in zip(body.params[1:], carried):
            shape = shapes.get(id(init))
            if shape is not None:
                shapes[id(param)] = shape
        _walk_block(body, shapes, scalars)
        for i, out in enumerate(node.outputs):
            init_shape = shapes.get(id(carried[i])) \
                if i < len(carried) else None
            ret = body.returns[i + 1] if i + 1 < len(body.returns) \
                else None
            ret_shape = shapes.get(id(ret)) if ret is not None else None
            # only trust a loop-stable shape: the body must hand back
            # the same shape it received (or one we could not track)
            if init_shape is not None and ret_shape == init_shape:
                shapes[id(out)] = init_shape
        return
    if op == "prim::If":
        for blk in node.blocks:
            _walk_block(blk, shapes, scalars)
        for i, out in enumerate(node.outputs):
            branch = [shapes.get(id(blk.returns[i]))
                      for blk in node.blocks
                      if i < len(blk.returns)]
            if branch and all(b is not None and b == branch[0]
                              for b in branch):
                shapes[id(out)] = branch[0]
        return
    # FusionGroup: params mirror inputs; ParallelMap adds a leading
    # trip-count input and a leading index param
    body = node.block()
    offset = 1 if op == "prim::ParallelMap" else 0
    for param, arg in zip(body.params[offset:], node.inputs[offset:]):
        shape = shapes.get(id(arg))
        if shape is not None:
            shapes[id(param)] = shape
    _walk_block(body, shapes, scalars)
    for out, ret in zip(node.outputs, body.returns):
        shape = shapes.get(id(ret))
        if shape is not None:
            shapes[id(out)] = shape


# -- per-op rules -------------------------------------------------------


def _rule_size(node, shapes, scalars) -> None:
    shape = shapes.get(id(node.input(0)))
    if shape is None:
        return
    if len(node.inputs) > 1:
        dim = _as_int(_const_or_scalar(node.input(1), scalars))
        if dim is None:
            return
        if -len(shape) <= dim < len(shape):
            got = shape[dim]
            if got is not None:
                scalars[id(node.output())] = got


def _rule_list_construct(node, shapes, scalars) -> None:
    dims: List[Optional[DimLike]] = [
        _const_or_scalar(v, scalars) for v in node.inputs]
    if all(d is not None for d in dims):
        # a list of ints is itself a candidate allocation shape
        shapes[id(node.output())] = tuple(dims)


def _rule_alloc(node, shapes, scalars) -> None:
    # aten::zeros/ones/empty(shape_list): the list input carries the
    # shape we propagated through ListConstruct
    if not node.inputs:
        return
    shape = shapes.get(id(node.input(0)))
    if shape is not None:
        shapes[id(node.output())] = shape


def _rule_matmul(node, shapes, scalars) -> None:
    a = shapes.get(id(node.input(0)))
    b = shapes.get(id(node.input(1)))
    if a is None or b is None or len(a) < 2 or len(b) < 2:
        return
    if len(a) == len(b) and a[:-2] != b[:-2]:
        return  # batch dims must agree for this simple rule
    shapes[id(node.output())] = a[:-1] + (b[-1],)


def _rule_linear(node, shapes, scalars) -> None:
    # aten::linear(x, w, b): (..., in) x (out, in) -> (..., out)
    x = shapes.get(id(node.input(0)))
    w = shapes.get(id(node.input(1)))
    if x is None or w is None or len(w) != 2 or not x:
        return
    shapes[id(node.output())] = x[:-1] + (w[0],)


def _rule_transpose(node, shapes, scalars) -> None:
    shape = shapes.get(id(node.input(0)))
    d0 = _as_int(_const_or_scalar(node.input(1), scalars)) \
        if len(node.inputs) > 1 else None
    d1 = _as_int(_const_or_scalar(node.input(2), scalars)) \
        if len(node.inputs) > 2 else None
    if shape is None or d0 is None or d1 is None:
        return
    dims = list(shape)
    if not (-len(dims) <= d0 < len(dims) and -len(dims) <= d1 < len(dims)):
        return
    dims[d0], dims[d1] = dims[d1], dims[d0]
    shapes[id(node.output())] = tuple(dims)


def _rule_select(node, shapes, scalars) -> None:
    shape = shapes.get(id(node.input(0)))
    dim = _as_int(_const_or_scalar(node.input(1), scalars)) \
        if len(node.inputs) > 1 else None
    if shape is None or dim is None:
        return
    if not -len(shape) <= dim < len(shape):
        return
    dim = dim % len(shape)
    shapes[id(node.output())] = shape[:dim] + shape[dim + 1:]


def _rule_slice(node, shapes, scalars) -> None:
    # aten::slice(t, dim, start, end, step): only the fully-constant
    # in-bounds case is priced; anything else leaves that dim unknown
    shape = shapes.get(id(node.input(0)))
    if shape is None:
        return
    args = [_as_int(_const_or_scalar(node.input(i), scalars))
            if i < len(node.inputs) else None for i in range(1, 5)]
    dim, start, end, step = args
    if dim is None or not -len(shape) <= dim < len(shape):
        return
    dim = dim % len(shape)
    dims = list(shape)
    start = 0 if start is None else start
    step = 1 if step is None else step
    extent = _as_int(dims[dim]) if not isinstance(dims[dim], SymInt) \
        else (dims[dim].value if dims[dim].is_const else None)
    if (end is not None and start >= 0 and step > 0 and end >= start
            and (extent is None or end <= extent)):
        dims[dim] = max(0, (end - start + step - 1) // step)
    else:
        dims[dim] = None
    shapes[id(node.output())] = tuple(dims)


def _rule_unsqueeze(node, shapes, scalars) -> None:
    shape = shapes.get(id(node.input(0)))
    dim = _as_int(_const_or_scalar(node.input(1), scalars)) \
        if len(node.inputs) > 1 else None
    if shape is None or dim is None:
        return
    if not -len(shape) - 1 <= dim <= len(shape):
        return
    dim = dim % (len(shape) + 1)
    shapes[id(node.output())] = shape[:dim] + (1,) + shape[dim:]


def _rule_scalar_arith(node, shapes, scalars) -> None:
    # prim::add/sub/mul on tracked ints -> SymInt arithmetic
    a = _const_or_scalar(node.input(0), scalars)
    b = _const_or_scalar(node.input(1), scalars) \
        if len(node.inputs) > 1 else None
    if a is None or b is None:
        return
    sa = a if isinstance(a, SymInt) else SymInt.const(a)
    result = {"prim::add": sa.__add__, "prim::sub": sa.__sub__,
              "prim::mul": sa.__mul__}.get(node.op)
    if result is not None:
        scalars[id(node.output())] = result(b)


_RULES = {
    "aten::size": _rule_size,
    "prim::ListConstruct": _rule_list_construct,
    "aten::zeros": _rule_alloc,
    "aten::ones": _rule_alloc,
    "aten::empty": _rule_alloc,
    "aten::matmul": _rule_matmul,
    "aten::linear": _rule_linear,
    "aten::transpose": _rule_transpose,
    "immut::transpose": _rule_transpose,
    "aten::select": _rule_select,
    "immut::select": _rule_select,
    "aten::slice": _rule_slice,
    "immut::slice": _rule_slice,
    "aten::unsqueeze": _rule_unsqueeze,
    "prim::add": _rule_scalar_arith,
    "prim::sub": _rule_scalar_arith,
    "prim::mul": _rule_scalar_arith,
}
