"""Symbolic shape families: compile once per shape *family*, not per
concrete shape.

The subsystem has four parts, layered bottom-up:

:mod:`~repro.symshape.symbols`
    ``SymInt`` expression algebra plus the duck-shaping
    ``SizeVarAllocator`` (same extent -> same symbol; extents 0/1
    always specialize).
:mod:`~repro.symshape.guards`
    ``Guard``/``GuardSet`` predicates (``s0 == 16``, ``s0 >= 2``,
    ``s0 % 8 == 0``) delimiting the shapes an artifact is valid for.
:mod:`~repro.symshape.family`
    ``ShapeFamily``/``FamilyTable`` — the guard-checked registry the
    compile cache and memory planner key on, with ``hit`` / ``new`` /
    ``guard_miss`` outcomes and the ``compiling_family`` recording
    scope used by shape-specializing passes.
:mod:`~repro.symshape.bucketing` / :mod:`~repro.symshape.propagate`
    power-of-two padding for the serve batcher, and best-effort
    symbolic shape propagation feeding the memory planner's size
    hints.

Enable it per lookup with ``dynamic_shapes=True`` on
:func:`repro.eval.harness.run_workload` /
:func:`~repro.eval.harness.compile_cached_status`, or fleet-wide with
``ServePolicy(dynamic_shapes=True)``.
"""

from .bucketing import (PAD_SPECS, PadSpec, bucket_extent, get_pad_spec,
                        pad_args, request_extent, unpad_outputs)
from .family import (FamilyStats, FamilyTable, ShapeFamily, active_family,
                     compiling_family, record_specialization_guard,
                     symbolize_signature)
from .guards import Guard, GuardSet, guard_eq, guard_ge, guard_mod
from .propagate import (annotate_symbolic_shapes, symbolic_nbytes,
                        symbolic_shape_of)
from .symbols import (DEGENERATE_EXTENTS, SizeVarAllocator, SymInt,
                      as_dim, evaluate_dim, sym_max)

__all__ = [
    "SymInt", "SizeVarAllocator", "DEGENERATE_EXTENTS", "as_dim",
    "evaluate_dim", "sym_max",
    "Guard", "GuardSet", "guard_eq", "guard_ge", "guard_mod",
    "ShapeFamily", "FamilyTable", "FamilyStats", "symbolize_signature",
    "compiling_family", "active_family", "record_specialization_guard",
    "PadSpec", "PAD_SPECS", "get_pad_spec", "bucket_extent", "pad_args",
    "unpad_outputs", "request_extent",
    "annotate_symbolic_shapes", "symbolic_shape_of", "symbolic_nbytes",
]
