"""Bucketed padding: coalesce near-miss sequence lengths into one run.

Even with shape families, a batcher that groups on *exact* sequence
length fragments diverse traffic into tiny per-length batches.  The
standard serving fix is bucketing: round each request's variable
extent up to a power-of-two bucket (``>= bucket_min``), zero-pad the
sequence axis to the bucket, run one fused kernel per bucket, and
slice the real rows back out on scatter.  Padding happens host-side
(no device launches), and the un-padded region's bit-exactness is
enforced by the executor's existing ``verify="batch"`` oracle, which
runs eager on the *identical padded inputs* and un-pads both sides the
same way.

A :class:`PadSpec` names, per workload, which argument carries the
padded extent (and on which axis) and which *axes of each output*
carry it back — an output may carry it on several axes (attention's
probabilities are ``(B, T, T)``).  Workloads whose recurrences fold
the whole sequence into their final state (LSTM's ``h``/``c``) expose
padded-length state; that is the documented numerics contract of
bucketing (same shape as the batching GEMM note), and the oracle holds
because eager sees the same padded inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

import repro.runtime as rt

__all__ = ["PadSpec", "PAD_SPECS", "get_pad_spec", "bucket_extent",
           "pad_args", "unpad_outputs", "request_extent"]


@dataclass(frozen=True)
class PadSpec:
    """Where the padded (sequence) extent lives in args and outputs.

    ``arg_axes[i]`` is the padded axis of argument ``i`` or None when
    the argument has no sequence extent; ``out_axes[k]`` is the tuple
    of axes of output ``k`` that carry the padded extent (an output
    can carry it more than once), or None.
    """

    arg_axes: Tuple[Optional[int], ...]
    out_axes: Tuple[Optional[Tuple[int, ...]], ...]


#: Per-workload padded-axis metadata.  RNN-style workloads are
#: time-major — the sequence extent is axis 0 of the activations;
#: attention is batch-major with the sequence on axis 1, and its
#: probability output carries the extent twice (rows and columns).
PAD_SPECS: Dict[str, PadSpec] = {
    # lstm(x, wx, wh, bias, h0, c0) -> (out, h, c): x is (T, B, D)
    "lstm": PadSpec(arg_axes=(0, None, None, None, None, None),
                    out_axes=((0,), None, None)),
    # nasrnn(x, wx, wh, h0) -> (out, h): x is (T, B, D)
    "nasrnn": PadSpec(arg_axes=(0, None, None, None),
                      out_axes=((0,), None)),
    # attention(q, k, v) -> (ctx, probs): inputs (B, T, D),
    # probs is (B, T, T)
    "attention": PadSpec(arg_axes=(1, 1, 1),
                         out_axes=((1,), (1, 2))),
}


def get_pad_spec(workload_name: str) -> Optional[PadSpec]:
    """Pad axes for a workload, or None when it cannot be bucketed."""
    return PAD_SPECS.get(workload_name)


def bucket_extent(extent: int, bucket_min: int = 8) -> int:
    """The power-of-two bucket an extent rounds up into.

    Extents at or below ``bucket_min`` share the smallest bucket;
    larger extents round up to the next power of two, so the number of
    distinct compiled shapes grows logarithmically with the extent
    range instead of linearly.
    """
    if extent <= bucket_min:
        return bucket_min
    bucket = bucket_min
    while bucket < extent:
        bucket *= 2
    return bucket


def request_extent(spec: Optional[PadSpec], args: Sequence) -> Optional[int]:
    """The sequence extent of one request's args (None when unknown)."""
    if spec is None:
        return None
    for i, axis in enumerate(spec.arg_axes):
        if axis is not None and i < len(args) \
                and isinstance(args[i], rt.Tensor):
            return int(args[i].shape[axis])
    return None


def _pad_axis(t: rt.Tensor, axis: int, target: int) -> rt.Tensor:
    """Zero-pad ``t`` along ``axis`` up to ``target`` (host-side)."""
    arr = t.numpy()
    have = arr.shape[axis]
    if have == target:
        return t
    if have > target:
        raise ValueError(
            f"cannot pad axis {axis} down: {have} > {target}")
    widths = [(0, 0)] * arr.ndim
    widths[axis] = (0, target - have)
    padded = np.pad(arr, widths, mode="constant")
    return rt.Tensor.from_array(np.ascontiguousarray(padded), copy=False)


def pad_args(args: Sequence, spec: PadSpec, target: int) -> tuple:
    """Pad every sequence-carrying argument up to the bucket extent."""
    out: List[object] = []
    for i, arg in enumerate(args):
        axis = spec.arg_axes[i] if i < len(spec.arg_axes) else None
        if axis is None or not isinstance(arg, rt.Tensor):
            out.append(arg)
        else:
            out.append(_pad_axis(arg, axis, target))
    return tuple(out)


def _slice_axis(t: rt.Tensor, axis: int, extent: int) -> rt.Tensor:
    arr = t.numpy()
    if arr.shape[axis] == extent:
        return t
    index = [slice(None)] * arr.ndim
    index[axis] = slice(0, extent)
    return rt.Tensor.from_array(np.ascontiguousarray(arr[tuple(index)]),
                                copy=False)


def unpad_outputs(outputs: Sequence, spec: PadSpec, extent: int) -> tuple:
    """Slice each output back to the request's real sequence extent."""
    out: List[object] = []
    for k, val in enumerate(outputs):
        axes = spec.out_axes[k] if k < len(spec.out_axes) else None
        if axes is None or not isinstance(val, rt.Tensor):
            out.append(val)
        else:
            for axis in axes:
                val = _slice_axis(val, axis, extent)
            out.append(val)
    return tuple(out)
