"""Symbolic integers and the duck-shaping size-variable allocator.

TorchInductor's insight (``SizeVarAllocator`` / ``symbolic_sizes_
strides``): instead of compiling one artifact per concrete shape,
assign a *symbol* to each distinct extent of the example inputs — two
dimensions with the same extent share one symbol ("duck shaping"), so
the structural equalities a kernel actually relies on are captured for
free, and everything else stays a free variable.  A compiled artifact
is then valid for a whole *family* of shapes (see
:mod:`repro.symshape.family`), not just the example it was traced on.

:class:`SymInt` is a tiny immutable symbolic-integer expression tree
supporting the arithmetic shape inference needs — ``+ - * // %`` and
``max`` — with constant folding and algebraic simplification
(``x * 1``, ``x + 0``, ``x // 1``, ``max(x, x)``).  Expressions
evaluate to concrete ints under a symbol binding, which is how guards
are checked and how the memory planner turns symbolic sizes into
max-extent byte bounds.

Extents 0 and 1 are **never** symbolized: size-one dimensions
broadcast and size-zero dimensions vanish, so an artifact traced at
extent 1 is generally *wrong* at extent 2 (the classic Inductor
size-1 hazard).  Degenerate extents stay concrete constants, which
forces :class:`~repro.symshape.family.ShapeFamily` to specialize on
them.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Set, Tuple, Union

__all__ = ["SymInt", "SizeVarAllocator", "sym_max", "as_dim",
           "evaluate_dim", "DEGENERATE_EXTENTS"]

#: extents that are always specialized to constants, never symbolized
#: (broadcasting / empty-dim semantics differ from the generic case)
DEGENERATE_EXTENTS = frozenset({0, 1})


class SymInt:
    """An immutable symbolic-integer expression.

    Leaves are either named symbols (``op == "sym"``) or integer
    constants (``op == "const"``); interior nodes are the arithmetic
    operators ``+ - * // % max``.  Instances are value-equal and
    hashable, so expressions can key caches and live in guard sets.
    """

    __slots__ = ("op", "args", "name", "value", "_hash")

    def __init__(self, op: str, args: Tuple["SymInt", ...] = (),
                 name: str = "", value: int = 0) -> None:
        self.op = op
        self.args = args
        self.name = name
        self.value = value
        self._hash = hash((op, args, name, value))

    # -- constructors ---------------------------------------------------

    @staticmethod
    def sym(name: str) -> "SymInt":
        """A named free symbol (``s0``, ``s1``, ...)."""
        return SymInt("sym", name=name)

    @staticmethod
    def const(value: int) -> "SymInt":
        """An integer constant lifted into the expression algebra."""
        return SymInt("const", value=int(value))

    # -- structure ------------------------------------------------------

    @property
    def is_symbol(self) -> bool:
        """True for a bare named symbol."""
        return self.op == "sym"

    @property
    def is_const(self) -> bool:
        """True for an integer constant leaf."""
        return self.op == "const"

    def free_symbols(self) -> Set[str]:
        """Names of every symbol appearing in the expression."""
        if self.is_symbol:
            return {self.name}
        out: Set[str] = set()
        for a in self.args:
            out |= a.free_symbols()
        return out

    # -- evaluation -----------------------------------------------------

    def evaluate(self, env: Dict[str, int]) -> int:
        """Concrete value under ``env`` (symbol name -> extent).

        Raises ``KeyError`` for unbound symbols and
        ``ZeroDivisionError`` where the concrete arithmetic would.
        """
        if self.is_const:
            return self.value
        if self.is_symbol:
            return env[self.name]
        vals = [a.evaluate(env) for a in self.args]
        if self.op == "+":
            return vals[0] + vals[1]
        if self.op == "-":
            return vals[0] - vals[1]
        if self.op == "*":
            return vals[0] * vals[1]
        if self.op == "//":
            return vals[0] // vals[1]
        if self.op == "%":
            return vals[0] % vals[1]
        if self.op == "max":
            return max(vals[0], vals[1])
        raise ValueError(f"unknown SymInt op {self.op!r}")

    # -- arithmetic (every operator simplifies eagerly) -----------------

    def _binary(self, op: str, other: "DimLike") -> "SymInt":
        return _simplify_binary(op, self, as_dim(other))

    def __add__(self, other: "DimLike") -> "SymInt":
        return self._binary("+", other)

    def __radd__(self, other: "DimLike") -> "SymInt":
        return as_dim(other)._binary("+", self)

    def __sub__(self, other: "DimLike") -> "SymInt":
        return self._binary("-", other)

    def __rsub__(self, other: "DimLike") -> "SymInt":
        return as_dim(other)._binary("-", self)

    def __mul__(self, other: "DimLike") -> "SymInt":
        return self._binary("*", other)

    def __rmul__(self, other: "DimLike") -> "SymInt":
        return as_dim(other)._binary("*", self)

    def __floordiv__(self, other: "DimLike") -> "SymInt":
        return self._binary("//", other)

    def __mod__(self, other: "DimLike") -> "SymInt":
        return self._binary("%", other)

    # -- identity -------------------------------------------------------

    def __eq__(self, other) -> bool:
        if isinstance(other, int):
            return self.is_const and self.value == other
        if not isinstance(other, SymInt):
            return NotImplemented
        return (self.op == other.op and self.args == other.args
                and self.name == other.name and self.value == other.value)

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        if self.is_const:
            return str(self.value)
        if self.is_symbol:
            return self.name
        if self.op == "max":
            return f"max({self.args[0]!r}, {self.args[1]!r})"
        return f"({self.args[0]!r} {self.op} {self.args[1]!r})"


DimLike = Union[SymInt, int]


def as_dim(value: DimLike) -> SymInt:
    """Lift an int into the expression algebra; pass SymInt through."""
    if isinstance(value, SymInt):
        return value
    return SymInt.const(value)


def evaluate_dim(dim: DimLike, env: Dict[str, int]) -> int:
    """Evaluate a dim that may be a plain int or a :class:`SymInt`."""
    if isinstance(dim, SymInt):
        return dim.evaluate(env)
    return int(dim)


def sym_max(a: DimLike, b: DimLike) -> SymInt:
    """``max`` over symbolic dims, simplified (``max(x, x) == x``)."""
    return _simplify_binary("max", as_dim(a), as_dim(b))


def _simplify_binary(op: str, a: SymInt, b: SymInt) -> SymInt:
    """Constant-fold and apply the cheap algebraic identities."""
    if a.is_const and b.is_const:
        return SymInt.const(SymInt(op, (a, b)).evaluate({}))
    if op == "+":
        if a.is_const and a.value == 0:
            return b
        if b.is_const and b.value == 0:
            return a
    elif op == "-":
        if b.is_const and b.value == 0:
            return a
        if a == b:
            return SymInt.const(0)
    elif op == "*":
        for x, y in ((a, b), (b, a)):
            if x.is_const:
                if x.value == 0:
                    return SymInt.const(0)
                if x.value == 1:
                    return y
    elif op == "//":
        if b.is_const and b.value == 1:
            return a
        if a.is_const and a.value == 0:
            return SymInt.const(0)
    elif op == "%":
        if b.is_const and b.value == 1:
            return SymInt.const(0)
        if a == b:
            return SymInt.const(0)
    elif op == "max":
        if a == b:
            return a
    return SymInt(op, (a, b))


class SizeVarAllocator:
    """Duck-shaping symbol allocator: same extent -> same symbol.

    ``alloc[extent]`` returns the symbol minted for that extent,
    creating one on first sight — so every dimension (and symbolizable
    scalar argument) of one example input set that shares a concrete
    extent shares a symbol, which encodes the equalities
    (``s_i == s_j``) the family's artifact may rely on.  Degenerate
    extents (:data:`DEGENERATE_EXTENTS`) come back as constants and
    therefore force specialization.
    """

    def __init__(self, prefix: str = "s",
                 specialize: Iterable[int] = DEGENERATE_EXTENTS) -> None:
        self.prefix = prefix
        self._specialize = frozenset(specialize)
        self._by_extent: Dict[int, SymInt] = {}
        self._minted_from: Dict[str, int] = {}

    def __getitem__(self, extent: int) -> SymInt:
        """The symbol (or degenerate constant) for one extent."""
        extent = int(extent)
        if extent in self._specialize or extent < 0:
            return SymInt.const(extent)
        sym = self._by_extent.get(extent)
        if sym is None:
            sym = SymInt.sym(f"{self.prefix}{len(self._minted_from)}")
            self._by_extent[extent] = sym
            self._minted_from[sym.name] = extent
        return sym

    def __len__(self) -> int:
        return len(self._minted_from)

    def symbolize_shape(self, shape: Sequence[int]) -> Tuple[SymInt, ...]:
        """Duck-shape one concrete shape into symbolic dims."""
        return tuple(self[d] for d in shape)

    def bindings(self) -> Dict[str, int]:
        """symbol name -> the concrete extent it was minted from."""
        return dict(self._minted_from)

    def extent_of(self, name: str) -> Optional[int]:
        """The extent a symbol was minted from, or None if unknown."""
        return self._minted_from.get(name)
