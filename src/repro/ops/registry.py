"""The operator registry: every op an IR node may carry.

Namespaces follow TorchScript conventions:

* ``aten::*``  — tensor ops (pure, view, or mutating) and scalar helpers.
* ``immut::*`` — the TensorSSA Access/Assign operator sets (paper §3.2).
* ``prim::*``  — constants, control flow, containers, scalar arithmetic.
* ``tssa::*``  — the Update annotation (paper Definition 3.5).
"""

from __future__ import annotations

import operator
from typing import Dict, Iterable

from ..runtime import (creation, elementwise, inplace, linalg, reduction,
                       shape_ops, views)
from . import immut
from .schema import GenRule, OpKind, OpSchema

REGISTRY: Dict[str, OpSchema] = {}


def register(schema: OpSchema) -> OpSchema:
    """Register a schema; duplicate names are rejected."""
    if schema.name in REGISTRY:
        raise ValueError(f"duplicate op registration: {schema.name}")
    REGISTRY[schema.name] = schema
    return schema


def get(name: str) -> OpSchema:
    """Look up a schema by op name; KeyError with guidance if missing."""
    try:
        return REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown operator {name!r}; "
                       f"is it missing from repro.ops.registry?") from None


def has(name: str) -> bool:
    """Is this op name registered?"""
    return name in REGISTRY


def all_ops() -> Iterable[OpSchema]:
    """Iterate every registered schema."""
    return REGISTRY.values()


def _pure(name, fn, fusable=False, num_outputs=1, result_types=("Tensor",),
          gen=None):
    register(OpSchema(name, OpKind.PURE, fn, num_outputs=num_outputs,
                      fusable=fusable, result_types=result_types, gen=gen))


def _view(name, fn, access_op, assign_op):
    register(OpSchema(name, OpKind.VIEW, fn, access_op=access_op,
                      assign_op=assign_op))


def _mutating(name, fn, functional_op, gen=None):
    register(OpSchema(name, OpKind.MUTATING, fn, functional_op=functional_op,
                      gen=gen))


# ---------------------------------------------------------------------------
# Fuzzer synthesis rules (consumed by repro.fuzz.generator).  Only ops
# whose random application is numerically stable under *bit-exact*
# differential comparison get a rule: no log/sqrt on unconstrained
# operands, and division only by scalars bounded away from zero.
# ---------------------------------------------------------------------------

_EW_BINARY = GenRule("elementwise", arity=2, scalar_ok=True)
_EW_UNARY = GenRule("elementwise", arity=1)
_GEN_PURE = {
    "add": _EW_BINARY, "sub": _EW_BINARY, "mul": _EW_BINARY,
    "maximum": _EW_BINARY, "minimum": _EW_BINARY,
    "div": GenRule("elementwise", arity=2, scalar_ok=True,
                   tensor_tensor=False, scalar_range=(0.5, 2.0)),
    "neg": _EW_UNARY, "abs": _EW_UNARY, "sigmoid": _EW_UNARY,
    "tanh": _EW_UNARY, "relu": _EW_UNARY, "floor": _EW_UNARY,
    "ceil": _EW_UNARY,
    "clamp": GenRule("elementwise", arity=1, scalar_args=2),
}
_MUT_BINARY = GenRule("mutating", arity=2, scalar_ok=True)
_MUT_UNARY = GenRule("mutating", arity=1)
_GEN_MUTATING = {
    "add_": _MUT_BINARY, "sub_": _MUT_BINARY, "mul_": _MUT_BINARY,
    "maximum_": _MUT_BINARY, "minimum_": _MUT_BINARY,
    "div_": GenRule("mutating", arity=2, scalar_ok=True,
                    tensor_tensor=False, scalar_range=(0.5, 2.0)),
    "neg_": _MUT_UNARY, "sigmoid_": _MUT_UNARY, "tanh_": _MUT_UNARY,
    "relu_": _MUT_UNARY, "zero_": _MUT_UNARY,
    "fill_": GenRule("mutating", arity=1, scalar_args=1),
    "clamp_": GenRule("mutating", arity=1, scalar_args=2),
}
_GEN_REDUCE = {"sum": GenRule("reduction"), "mean": GenRule("reduction"),
               "max": GenRule("reduction"), "min": GenRule("reduction")}


# ---------------------------------------------------------------------------
# aten:: pure elementwise (the fusable set)
# ---------------------------------------------------------------------------

for _n, _f in [
    ("add", elementwise.add), ("sub", elementwise.sub),
    ("mul", elementwise.mul), ("div", elementwise.div),
    ("pow", elementwise.pow), ("neg", elementwise.neg),
    ("abs", elementwise.abs), ("exp", elementwise.exp),
    ("log", elementwise.log), ("sqrt", elementwise.sqrt),
    ("sigmoid", elementwise.sigmoid), ("tanh", elementwise.tanh),
    ("relu", elementwise.relu), ("clamp", elementwise.clamp),
    ("floor", elementwise.floor), ("ceil", elementwise.ceil),
    ("maximum", elementwise.maximum), ("minimum", elementwise.minimum),
    ("where", elementwise.where), ("clone", elementwise.clone),
    ("gt", elementwise.gt), ("lt", elementwise.lt),
    ("ge", elementwise.ge), ("le", elementwise.le),
    ("eq", elementwise.eq), ("ne", elementwise.ne),
    ("logical_and", elementwise.logical_and),
    ("logical_or", elementwise.logical_or),
    ("logical_not", elementwise.logical_not),
    ("masked_fill", shape_ops.masked_fill),
]:
    _pure(f"aten::{_n}", _f, fusable=True, gen=_GEN_PURE.get(_n))

_pure("aten::to", elementwise.to, fusable=True)

# ---------------------------------------------------------------------------
# aten:: pure non-fusable (reductions, linalg, data movement, creation)
# ---------------------------------------------------------------------------

for _n, _f in [
    ("sum", reduction.sum), ("mean", reduction.mean),
    ("max", reduction.max), ("min", reduction.min),
    ("argmax", reduction.argmax), ("argmin", reduction.argmin),
    ("cumsum", reduction.cumsum), ("softmax", reduction.softmax),
    ("log_softmax", reduction.log_softmax),
    ("matmul", linalg.matmul), ("bmm", linalg.bmm),
    ("linear", linalg.linear),
    ("cat", shape_ops.cat), ("stack", shape_ops.stack),
    ("index_select", shape_ops.index_select),
    ("gather", shape_ops.gather),
    ("masked_select", shape_ops.masked_select),
    ("nonzero", shape_ops.nonzero), ("embedding", shape_ops.embedding),
    ("masked_scatter", shape_ops.masked_scatter),
    ("index_put", shape_ops.index_put),
    ("index_fill", shape_ops.index_fill),
    ("zeros", creation.zeros), ("ones", creation.ones),
    ("full", creation.full), ("arange", creation.arange),
]:
    _pure(f"aten::{_n}", _f, gen=_GEN_REDUCE.get(_n))

# like-fills are elementwise writes: fusable (NNC folds constant fills)
for _n, _f in [("zeros_like", creation.zeros_like),
               ("ones_like", creation.ones_like),
               ("full_like", creation.full_like)]:
    _pure(f"aten::{_n}", _f, fusable=True)

_pure("aten::topk", shape_ops.topk, num_outputs=2,
      result_types=("Tensor", "Tensor"))
_pure("aten::sort", shape_ops.sort, num_outputs=2,
      result_types=("Tensor", "Tensor"))

# Scalar extraction (forces host sync — a fusion and graph boundary).
_pure("aten::item", lambda t: t.item(), result_types=("Scalar",))
_pure("aten::Bool", lambda t: bool(t), result_types=("bool",))
_pure("aten::Int", lambda v: int(v.item() if hasattr(v, "item") else v),
      result_types=("int",))
_pure("aten::Float", lambda v: float(v.item() if hasattr(v, "item") else v),
      result_types=("float",))
_pure("aten::len", lambda x: len(x), result_types=("int",))
_pure("aten::size", lambda t, dim=None: (t.shape if dim is None
                                         else t.shape[int(dim)]),
      result_types=("int",))
_pure("aten::numel", lambda t: t.numel, result_types=("int",))
_pure("aten::dim", lambda t: t.ndim, result_types=("int",))

# ---------------------------------------------------------------------------
# aten:: view operators with their immut:: counterparts
# ---------------------------------------------------------------------------

_view("aten::alias", views.alias, "immut::alias", "immut::assign")
_view("aten::select", views.select, "immut::select", "immut::select_assign")
_view("aten::slice", views.slice_, "immut::slice", "immut::slice_assign")
_view("aten::narrow", views.narrow, "immut::narrow", "immut::narrow_assign")
_view("aten::reshape", views.reshape, "immut::reshape",
      "immut::reshape_assign")
_view("aten::view", views.view, "immut::reshape", "immut::reshape_assign")
_view("aten::permute", views.permute, "immut::permute",
      "immut::permute_assign")
_view("aten::transpose", views.transpose, "immut::transpose",
      "immut::transpose_assign")
_view("aten::squeeze", views.squeeze, "immut::squeeze",
      "immut::squeeze_assign")
_view("aten::unsqueeze", views.unsqueeze, "immut::unsqueeze",
      "immut::unsqueeze_assign")
_view("aten::expand", views.expand, "immut::expand", None)
_view("aten::flatten", views.flatten, "immut::flatten",
      "immut::flatten_assign")

# ---------------------------------------------------------------------------
# aten:: mutating operators and their functional equivalents
# ---------------------------------------------------------------------------

_mutating("aten::copy_", inplace.copy_, functional_op=None)  # value == src
for _n, _f, _fop in [
    ("fill_", inplace.fill_, "aten::full_like"),
    ("zero_", inplace.zero_, "aten::zeros_like"),
    ("add_", inplace.add_, "aten::add"),
    ("sub_", inplace.sub_, "aten::sub"),
    ("mul_", inplace.mul_, "aten::mul"),
    ("div_", inplace.div_, "aten::div"),
    ("pow_", inplace.pow_, "aten::pow"),
    ("neg_", inplace.neg_, "aten::neg"),
    ("exp_", inplace.exp_, "aten::exp"),
    ("sqrt_", inplace.sqrt_, "aten::sqrt"),
    ("sigmoid_", inplace.sigmoid_, "aten::sigmoid"),
    ("tanh_", inplace.tanh_, "aten::tanh"),
    ("relu_", inplace.relu_, "aten::relu"),
    ("clamp_", inplace.clamp_, "aten::clamp"),
    ("maximum_", inplace.maximum_, "aten::maximum"),
    ("minimum_", inplace.minimum_, "aten::minimum"),
    ("masked_fill_", inplace.masked_fill_, "aten::masked_fill"),
    ("masked_scatter_", inplace.masked_scatter_, "aten::masked_scatter"),
    ("index_put_", inplace.index_put_, "aten::index_put"),
    ("index_fill_", inplace.index_fill_, "aten::index_fill"),
]:
    _mutating(f"aten::{_n}", _f, _fop, gen=_GEN_MUTATING.get(_n))

# ---------------------------------------------------------------------------
# immut:: Access / Assign (paper §3.2) — all pure and fusable
# ---------------------------------------------------------------------------

for _n, _f in [
    ("alias", immut.access_alias), ("select", immut.access_select),
    ("slice", immut.access_slice), ("narrow", immut.access_narrow),
    ("reshape", immut.access_reshape), ("permute", immut.access_permute),
    ("transpose", immut.access_transpose),
    ("squeeze", immut.access_squeeze), ("unsqueeze", immut.access_unsqueeze),
    ("expand", immut.access_expand), ("flatten", immut.access_flatten),
    ("assign", immut.assign), ("select_assign", immut.assign_select),
    ("slice_assign", immut.assign_slice),
    ("narrow_assign", immut.assign_narrow),
    ("reshape_assign", immut.assign_reshape),
    ("permute_assign", immut.assign_permute),
    ("transpose_assign", immut.assign_transpose),
    ("squeeze_assign", immut.assign_squeeze),
    ("unsqueeze_assign", immut.assign_unsqueeze),
    ("flatten_assign", immut.assign_flatten),
]:
    _pure(f"immut::{_n}", _f, fusable=True)

# ---------------------------------------------------------------------------
# grad:: helper operators emitted only by the reverse-mode pass
# ---------------------------------------------------------------------------

# unbroadcast is the adjoint of implicit broadcasting (and casting);
# reshape_like the adjoint of the whole reshape family.  stash_init
# allocates the per-iteration state buffer of the scan-style Loop
# adjoint.  All plain pure ops, so every existing pass / the planner /
# the interpreter handle backward graphs with zero special cases.
_pure("grad::unbroadcast", shape_ops.unbroadcast)
_pure("grad::reshape_like", shape_ops.reshape_like)
_pure("grad::stash_init", creation.stash_init)

# ---------------------------------------------------------------------------
# prim:: scalar arithmetic (host-side, never launches kernels)
# ---------------------------------------------------------------------------

for _n, _f, _rt in [
    ("add", operator.add, "Scalar"), ("sub", operator.sub, "Scalar"),
    ("mul", operator.mul, "Scalar"), ("truediv", operator.truediv, "float"),
    ("floordiv", operator.floordiv, "int"), ("mod", operator.mod, "Scalar"),
    ("pow", operator.pow, "Scalar"), ("neg", operator.neg, "Scalar"),
    ("gt", operator.gt, "bool"), ("lt", operator.lt, "bool"),
    ("ge", operator.ge, "bool"), ("le", operator.le, "bool"),
    ("eq", operator.eq, "bool"), ("ne", operator.ne, "bool"),
    ("and", lambda a, b: a and b, "bool"),
    ("or", lambda a, b: a or b, "bool"),
    ("not", operator.not_, "bool"),
    ("min", min, "Scalar"), ("max", max, "Scalar"),
]:
    # scalar ops are fusable: NNC-style kernels accept scalar inputs and
    # fold host arithmetic into the generated code
    _pure(f"prim::{_n}", _f, fusable=True, result_types=(_rt,))

# ---------------------------------------------------------------------------
# prim:: structure
# ---------------------------------------------------------------------------

register(OpSchema("prim::Constant", OpKind.CONSTANT, None,
                  result_types=("Any",)))
register(OpSchema("prim::If", OpKind.CONTROL, None, num_outputs=0))
register(OpSchema("prim::Loop", OpKind.CONTROL, None, num_outputs=0))
register(OpSchema("prim::FusionGroup", OpKind.CONTROL, None, num_outputs=0))
register(OpSchema("prim::ParallelMap", OpKind.CONTROL, None, num_outputs=0))
register(OpSchema("prim::ListConstruct", OpKind.CONTAINER,
                  lambda *xs: list(xs), result_types=("List",)))
register(OpSchema("prim::TupleConstruct", OpKind.CONTAINER,
                  lambda *xs: tuple(xs), result_types=("Tuple",)))
register(OpSchema("prim::TupleUnpack", OpKind.CONTAINER, lambda t: tuple(t),
                  num_outputs=0, result_types=("Any",)))
register(OpSchema("prim::ListIndex", OpKind.CONTAINER,
                  lambda xs, i: xs[i], result_types=("Any",)))
register(OpSchema("aten::append", OpKind.MUTATING,
                  lambda xs, x: (xs.append(x), xs)[1],
                  result_types=("List",)))
register(OpSchema("tssa::update", OpKind.ANNOTATION, None, num_outputs=0))

# ---------------------------------------------------------------------------
# Differentiability classification (consumed by repro.grad)
# ---------------------------------------------------------------------------
#
# Three-valued: ``True`` ops get a VJP from repro.grad.vjp at import
# time; ``False`` ops are *intentionally* non-differentiable and make
# grad() raise a typed GradError naming them; ``None`` (everything
# else) means unclassified — also a typed GradError, but phrased as
# "no VJP registered" so a missing rule is distinguishable from a
# deliberate exclusion.  Mutating ops are all False: the gradient pass
# requires the mutation-free TensorSSA form.

_NON_DIFFERENTIABLE = [
    # predicates and integer/bool results: derivative is zero a.e. and
    # meaningless at the jumps
    "aten::gt", "aten::lt", "aten::ge", "aten::le", "aten::eq", "aten::ne",
    "aten::logical_and", "aten::logical_or", "aten::logical_not",
    "aten::argmax", "aten::argmin", "aten::nonzero", "aten::topk",
    "aten::sort",
    # host-scalar extraction (graph boundaries, not tensor math)
    "aten::item", "aten::Bool", "aten::Int", "aten::Float", "aten::len",
    "aten::size", "aten::numel", "aten::dim",
    # list mutation
    "aten::append",
    # backward-only helpers: grad-of-grad is out of scope
    "grad::unbroadcast", "grad::reshape_like", "grad::stash_init",
]
for _n in _NON_DIFFERENTIABLE:
    REGISTRY[_n].differentiable = False
for _schema in REGISTRY.values():
    if _schema.kind is OpKind.MUTATING:
        _schema.differentiable = False
    elif _schema.name.startswith("prim::") and _schema.kind is OpKind.PURE:
        # host scalar arithmetic never carries tensor adjoints
        _schema.differentiable = False
