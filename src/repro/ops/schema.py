"""Operator schemas: the single source of truth about op behaviour.

Every IR node's semantics — purity, aliasing, mutability, fusibility,
its runtime kernel, and (for view ops) its immutable Access/Assign
counterparts — is described by an :class:`OpSchema`.  The frontend, the
alias analysis (paper §2.3), the TensorSSA conversion (paper §4.1), the
fusers, and the interpreter all consult this table instead of hardcoding
op lists.

Calling convention: *all* operands are IR inputs (dims, slice bounds,
shapes included), fed through ``prim::Constant`` nodes when static.
Nodes carry no attributes, which keeps every pass uniform.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Tuple


class OpKind(enum.Enum):
    """Behavioural class of an operator."""

    PURE = "pure"          # no side effects, fresh outputs
    VIEW = "view"          # output aliases input 0 (metadata only)
    MUTATING = "mutating"  # writes through input 0; output aliases input 0
    CONSTANT = "constant"  # prim::Constant
    CONTROL = "control"    # prim::If / prim::Loop / fusion groups
    CONTAINER = "container"  # list/tuple construct & access
    ANNOTATION = "annotation"  # tssa::update — no computation semantics


@dataclass(frozen=True)
class GenRule:
    """Machine-readable synthesis metadata for the differential fuzzer.

    Describes how :mod:`repro.fuzz.generator` may emit a random call to
    this op in frontend source: how many tensor operands it takes, their
    shape relationship, and which operand positions accept (or require)
    Python scalars.  Ops without a rule are never generated.
    """

    #: operand/shape class:
    #: ``"elementwise"`` — all tensor operands share one shape;
    #: ``"mutating"``    — writes through operand 0, others match it;
    #: ``"reduction"``   — one tensor in, 0-d tensor out.
    kind: str
    #: number of tensor operands (the method receiver included)
    arity: int = 1
    #: the trailing tensor operand may instead be a Python scalar
    scalar_ok: bool = False
    #: tensor-tensor form is allowed (False: scalar operand only, e.g.
    #: div, where a random divisor tensor risks near-zero entries)
    tensor_tensor: bool = True
    #: trailing *required* scalar arguments (clamp bounds, fill value)
    scalar_args: int = 0
    #: |scalar| is drawn from this closed range (keeps div/pow away from
    #: poles so both sides of the differential test stay finite-stable)
    scalar_range: Tuple[float, float] = (0.0, 2.0)


@dataclass
class OpSchema:
    """Static description of one operator."""

    name: str
    kind: OpKind
    #: runtime implementation (None for CONTROL/ANNOTATION ops that the
    #: interpreter executes structurally)
    fn: Optional[Callable] = None
    num_outputs: int = 1
    #: can the NNC-like fuser pull this op into a fusion group?
    fusable: bool = False
    #: for VIEW ops: names of the immutable Access / Assign counterparts
    #: (paper Definitions 3.3 / 3.4); access has the identical signature,
    #: assign takes ``(base, src, *view_params)``.
    access_op: Optional[str] = None
    assign_op: Optional[str] = None
    #: for MUTATING ops: name of the pure out-of-place equivalent, when
    #: one exists with signature ``(input0, *rest) -> out`` (used by the
    #: TensorSSA rewrite to materialize the mutation's value).
    functional_op: Optional[str] = None
    #: output type constructors; see repro.ir.types.infer_types
    result_types: Sequence[str] = field(default_factory=lambda: ("Tensor",))
    #: random-program synthesis rule (None: the fuzzer never emits it)
    gen: Optional[GenRule] = None
    #: differentiability classification, three-valued so the gradient
    #: pass can tell "nobody wrote a VJP yet" from "provably has no
    #: useful derivative":
    #: ``True``  — differentiable; ``vjp`` must be set (a zero/None
    #:             vector-Jacobian product counts, e.g. floor);
    #: ``False`` — *intentionally* non-differentiable (argmax,
    #:             comparisons, integer/bool extraction, mutation);
    #: ``None``  — unclassified: grad() raises a typed GradError naming
    #:             the op instead of a bare KeyError.
    differentiable: Optional[bool] = None
    #: vector-Jacobian product rule, registered by repro.grad.vjp via
    #: :func:`repro.grad.vjp.register_vjp`.  Signature
    #: ``vjp(builder, node, grads) -> [grad_or_None per input]`` where
    #: ``grads`` aligns with ``node.outputs``.
    vjp: Optional[Callable] = None

    @property
    def method(self) -> str:
        """The frontend method spelling (``aten::add_`` -> ``add_``)."""
        return self.name.split("::", 1)[1]

    @property
    def is_view(self) -> bool:
        return self.kind is OpKind.VIEW

    @property
    def is_mutating(self) -> bool:
        return self.kind is OpKind.MUTATING

    @property
    def has_side_effects(self) -> bool:
        return self.kind is OpKind.MUTATING

    def __post_init__(self) -> None:
        if "::" not in self.name:
            raise ValueError(f"op name must be namespaced: {self.name!r}")
