"""Immutable Access / Assign kernels (paper Definitions 3.3 and 3.4).

``immut::<view>`` is the *Access* counterpart of a view operator: same
signature, but it materializes a fresh tensor (one memory-bound kernel)
instead of aliasing.

``immut::<view>_assign(base, src, *view_params)`` is the *Assign*
counterpart: a pure operator producing a new version of ``base`` whose
``[.]``-selected region is replaced by ``src`` (paper Figure 3).

Every function records exactly one kernel launch.  After vertical
fusion these kernels disappear into fusion groups, which is where the
paper's speedup comes from — but they must also be individually
executable so a TensorSSA-converted graph runs standalone.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..runtime import views
from ..runtime.tensor import Tensor, as_tensor, record_op


def _fresh(arr: np.ndarray, op: str, inputs) -> Tensor:
    out = Tensor.from_array(arr, copy=False)
    record_op(op, [t for t in inputs if isinstance(t, Tensor)], [out],
              flops=0)
    return out


def _np(t) -> np.ndarray:
    if isinstance(t, float):
        # Python floats are doubles: keep full precision here and let
        # _cast round once to the base dtype.  float32 bases see the
        # identical rounding as the old as_tensor path; float64 bases
        # (grad-check runs) stop truncating scalar writes through f32.
        return np.asarray(t, dtype=np.float64)
    return as_tensor(t)._array


# ---------------------------------------------------------------------------
# Access operators
# ---------------------------------------------------------------------------

def access_alias(t: Tensor) -> Tensor:
    """Access (paper Def. 3.3): materialize ``alias`` as a fresh tensor — one kernel."""
    return _fresh(np.array(_np(t), copy=True), "immut::alias", [t])


def access_select(t: Tensor, dim: int, index: int) -> Tensor:
    """Access (paper Def. 3.3): materialize ``select`` as a fresh tensor — one kernel."""
    v = views.select(as_tensor(t), int(dim), int(index))
    return _fresh(v.numpy(), "immut::select", [t])


def access_slice(t: Tensor, dim: int, start: int = 0,
                 end: Optional[int] = None, step: int = 1) -> Tensor:
    """Access (paper Def. 3.3): materialize ``slice`` as a fresh tensor — one kernel."""
    v = views.slice_(as_tensor(t), int(dim), start, end, step)
    return _fresh(v.numpy(), "immut::slice", [t])


def access_narrow(t: Tensor, dim: int, start: int, length: int) -> Tensor:
    """Access (paper Def. 3.3): materialize ``narrow`` as a fresh tensor — one kernel."""
    v = views.narrow(as_tensor(t), int(dim), int(start), int(length))
    return _fresh(v.numpy(), "immut::narrow", [t])


def access_reshape(t: Tensor, shape: Sequence[int]) -> Tensor:
    """Access (paper Def. 3.3): materialize ``reshape`` as a fresh tensor — one kernel."""
    return _fresh(np.array(_np(t).reshape(tuple(shape)), copy=True),
                  "immut::reshape", [t])


def access_permute(t: Tensor, dims: Sequence[int]) -> Tensor:
    """Access (paper Def. 3.3): materialize ``permute`` as a fresh tensor — one kernel."""
    return _fresh(np.array(_np(t).transpose(tuple(dims)), copy=True),
                  "immut::permute", [t])


def access_transpose(t: Tensor, dim0: int, dim1: int) -> Tensor:
    """Access (paper Def. 3.3): materialize ``transpose`` as a fresh tensor — one kernel."""
    v = views.transpose(as_tensor(t), int(dim0), int(dim1))
    return _fresh(v.numpy(), "immut::transpose", [t])


def access_squeeze(t: Tensor, dim: Optional[int] = None) -> Tensor:
    """Access (paper Def. 3.3): materialize ``squeeze`` as a fresh tensor — one kernel."""
    v = views.squeeze(as_tensor(t), dim if dim is None else int(dim))
    return _fresh(v.numpy(), "immut::squeeze", [t])


def access_unsqueeze(t: Tensor, dim: int) -> Tensor:
    """Access (paper Def. 3.3): materialize ``unsqueeze`` as a fresh tensor — one kernel."""
    v = views.unsqueeze(as_tensor(t), int(dim))
    return _fresh(v.numpy(), "immut::unsqueeze", [t])


def access_expand(t: Tensor, shape: Sequence[int]) -> Tensor:
    """Access (paper Def. 3.3): materialize ``expand`` as a fresh tensor — one kernel."""
    v = views.expand(as_tensor(t), tuple(shape))
    return _fresh(v.numpy(), "immut::expand", [t])


def access_flatten(t: Tensor, start_dim: int = 0,
                   end_dim: int = -1) -> Tensor:
    """Access (paper Def. 3.3): materialize ``flatten`` as a fresh tensor — one kernel."""
    v = views.flatten(as_tensor(t), int(start_dim), int(end_dim))
    return _fresh(v.numpy(), "immut::flatten", [t])


# ---------------------------------------------------------------------------
# Assign operators
# ---------------------------------------------------------------------------

def _clone_base(base) -> np.ndarray:
    return np.array(_np(base), copy=True)


def _cast(src_arr: np.ndarray, base_arr: np.ndarray) -> np.ndarray:
    return src_arr.astype(base_arr.dtype, copy=False)


def assign(base: Tensor, src: Tensor) -> Tensor:
    """Whole-content assign: a new version of ``base`` filled with
    (broadcast) ``src`` — the innermost Assign of the pass-up chain."""
    b = _np(base)
    out = np.array(np.broadcast_to(_cast(_np(src), b), b.shape), copy=True)
    return _fresh(out, "immut::assign", [base, src])


def assign_alias(base: Tensor, src: Tensor) -> Tensor:
    """Assign (paper Def. 3.4): new version of ``base`` with its ``alias`` window replaced by ``src`` — one kernel."""
    return assign(base, src)


def assign_select(base: Tensor, src: Tensor, dim: int, index: int) -> Tensor:
    """Assign (paper Def. 3.4): new version of ``base`` with its ``select`` window replaced by ``src`` — one kernel."""
    out = _clone_base(base)
    key = (slice(None),) * views._norm_dim(int(dim), out.ndim) + (int(index),)
    out[key] = _cast(_np(src), out)
    return _fresh(out, "immut::select_assign", [base, src])


def assign_slice(base: Tensor, src: Tensor, dim: int, start: int = 0,
                 end: Optional[int] = None, step: int = 1) -> Tensor:
    """Assign (paper Def. 3.4): new version of ``base`` with its ``slice`` window replaced by ``src`` — one kernel."""
    out = _clone_base(base)
    d = views._norm_dim(int(dim), out.ndim)
    key = (slice(None),) * d + (slice(start, end, step),)
    out[key] = _cast(_np(src), out)
    return _fresh(out, "immut::slice_assign", [base, src])


def assign_narrow(base: Tensor, src: Tensor, dim: int, start: int,
                  length: int) -> Tensor:
    """Assign (paper Def. 3.4): new version of ``base`` with its ``narrow`` window replaced by ``src`` — one kernel."""
    return assign_slice(base, src, dim, int(start), int(start) + int(length),
                        1)


def assign_reshape(base: Tensor, src: Tensor,
                   shape: Sequence[int]) -> Tensor:
    """Assign (paper Def. 3.4): new version of ``base`` with its ``reshape`` window replaced by ``src`` — one kernel."""
    b = _np(base)
    out = np.array(_cast(_np(src), b).reshape(b.shape), copy=True)
    return _fresh(out, "immut::reshape_assign", [base, src])


def assign_permute(base: Tensor, src: Tensor,
                   dims: Sequence[int]) -> Tensor:
    """Assign (paper Def. 3.4): new version of ``base`` with its ``permute`` window replaced by ``src`` — one kernel."""
    b = _np(base)
    inverse = np.argsort(np.asarray(dims))
    out = np.array(_cast(_np(src), b).transpose(tuple(inverse)), copy=True)
    return _fresh(out, "immut::permute_assign", [base, src])


def assign_transpose(base: Tensor, src: Tensor, dim0: int,
                     dim1: int) -> Tensor:
    """Assign (paper Def. 3.4): new version of ``base`` with its ``transpose`` window replaced by ``src`` — one kernel."""
    b = _np(base)
    dims = list(range(b.ndim))
    d0 = views._norm_dim(int(dim0), b.ndim)
    d1 = views._norm_dim(int(dim1), b.ndim)
    dims[d0], dims[d1] = dims[d1], dims[d0]
    out = np.array(_cast(_np(src), b).transpose(tuple(dims)), copy=True)
    return _fresh(out, "immut::transpose_assign", [base, src])


def assign_squeeze(base: Tensor, src: Tensor,
                   dim: Optional[int] = None) -> Tensor:
    """Assign (paper Def. 3.4): new version of ``base`` with its ``squeeze`` window replaced by ``src`` — one kernel."""
    b = _np(base)
    out = np.array(_cast(_np(src), b).reshape(b.shape), copy=True)
    return _fresh(out, "immut::squeeze_assign", [base, src])


def assign_unsqueeze(base: Tensor, src: Tensor, dim: int) -> Tensor:
    """Assign (paper Def. 3.4): new version of ``base`` with its ``unsqueeze`` window replaced by ``src`` — one kernel."""
    b = _np(base)
    out = np.array(_cast(_np(src), b).reshape(b.shape), copy=True)
    return _fresh(out, "immut::unsqueeze_assign", [base, src])


def assign_flatten(base: Tensor, src: Tensor, start_dim: int = 0,
                   end_dim: int = -1) -> Tensor:
    """Assign (paper Def. 3.4): new version of ``base`` with its ``flatten`` window replaced by ``src`` — one kernel."""
    b = _np(base)
    out = np.array(_cast(_np(src), b).reshape(b.shape), copy=True)
    return _fresh(out, "immut::flatten_assign", [base, src])
