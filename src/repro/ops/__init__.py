"""repro.ops — operator schemas, the registry, and immut kernels."""

from . import immut
from .registry import REGISTRY, all_ops, get, has, register
from .schema import OpKind, OpSchema

__all__ = ["OpKind", "OpSchema", "REGISTRY", "get", "has", "register",
           "all_ops", "immut"]
