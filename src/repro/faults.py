"""Deterministic, seeded fault injection across the whole stack.

Chaos engineering for the simulated device: a :class:`FaultPlan` is a
schedule of :class:`FaultRule` entries — *which* site, *which* op
(substring match), *which* occurrence (``nth``) or probability — and
the runtime consults it at seven injection sites:

========================  ====================================================
site                      checked in
========================  ====================================================
``kernel_launch``         ``runtime/profiler.record_launch`` (interpreted and
                          eager launches) and ``backend/kernels.pre_launch``
                          (compiled fused kernels, horizontal loops, maps)
``alloc``                 ``runtime/storage.MemoryPool.allocate``
``fusion_compile``        ``backend/fusion_runtime._node_kernel``
``pass``                  ``passes/pass_manager.PassManager.run``
``batch_exec``            ``serve/executor.BatchExecutor._execute_plan``
``process_kill``          ``shard/worker`` boot / submit / reply checkpoints
                          (a fired fault makes the worker ``os._exit`` —
                          modeled SIGKILL, no cleanup)
``heartbeat_stall``       ``shard/worker`` heartbeat thread (a fired fault
                          silences or delays heartbeats so supervisor
                          deadline detection trips)
========================  ====================================================

Faults either *raise* a typed error from :mod:`repro.errors` (marked
``injected=True``) or *sleep* (injected latency).  Scheduling is fully
deterministic: ``nth``-based rules fire on exact hit indices, and
probabilistic rules draw from the plan's own seeded RNG, so the same
plan over the same single-threaded execution produces the identical
fault sequence — the property ``tests/test_faults.py`` pins.

Plans install two ways:

* :func:`fault_scope` — context-local (``contextvars``), for tests and
  the harness path; worker threads of a server do **not** see it.
* :func:`global_fault_scope` — process-global, for chaos campaigns that
  must reach server worker threads spawned before the plan existed.

When no plan is installed, :func:`maybe_inject` is a single contextvar
read plus a global load — cheap enough to sit on the hot path.

:class:`StateAuditor` is the crash-consistency half: it snapshots the
process state a fault could tear (profiler stack depth, pool-scope
stack depth, pool bytes-in-use, compile-cache in-flight slots) and
asserts everything returned to baseline after the dust settles.
"""

from __future__ import annotations

import random
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Type

from .errors import (CompileError, KernelError, OOMError, ReproError,
                     TornStateError, WorkerCrashed)

__all__ = [
    "SITE_KERNEL_LAUNCH", "SITE_ALLOC", "SITE_FUSION_COMPILE",
    "SITE_PASS", "SITE_BATCH_EXEC", "SITE_PROCESS_KILL",
    "SITE_HEARTBEAT_STALL", "ALL_SITES",
    "Fault", "FaultRule", "FaultRecord", "FaultPlan",
    "fault_scope", "global_fault_scope", "active_plan", "maybe_inject",
    "StateAuditor",
]

#: Injection-site names (the ``site`` field of a rule).
SITE_KERNEL_LAUNCH = "kernel_launch"
SITE_ALLOC = "alloc"
SITE_FUSION_COMPILE = "fusion_compile"
SITE_PASS = "pass"
SITE_BATCH_EXEC = "batch_exec"
#: sharded-serving crash domain (repro.shard.worker checkpoints): a
#: fired ``process_kill`` makes the worker ``os._exit`` — modeling
#: SIGKILL, no cleanup, no goodbye frame — and a fired
#: ``heartbeat_stall`` silences or delays its heartbeat thread so the
#: supervisor's deadline detection has something real to detect
SITE_PROCESS_KILL = "process_kill"
SITE_HEARTBEAT_STALL = "heartbeat_stall"
ALL_SITES = (SITE_KERNEL_LAUNCH, SITE_ALLOC, SITE_FUSION_COMPILE,
             SITE_PASS, SITE_BATCH_EXEC, SITE_PROCESS_KILL,
             SITE_HEARTBEAT_STALL)

#: Error type a site raises when the rule does not name one.
DEFAULT_ERRORS: Dict[str, Type[ReproError]] = {
    SITE_KERNEL_LAUNCH: KernelError,
    SITE_ALLOC: OOMError,
    SITE_FUSION_COMPILE: CompileError,
    SITE_PASS: CompileError,
    SITE_BATCH_EXEC: KernelError,
    SITE_PROCESS_KILL: WorkerCrashed,
    SITE_HEARTBEAT_STALL: WorkerCrashed,
}

#: Fault kinds.
KIND_ERROR = "error"
KIND_LATENCY = "latency"


@dataclass(frozen=True)
class Fault:
    """What happens when a rule fires: raise a typed error, or sleep."""

    kind: str = KIND_ERROR
    #: error type to raise; None = the site's default from DEFAULT_ERRORS
    error: Optional[Type[ReproError]] = None
    #: sleep duration for ``kind="latency"``
    latency_s: float = 0.0
    message: str = ""


@dataclass(frozen=True)
class FaultRule:
    """One schedule entry: where, what to match, when, and what fault.

    Deterministic mode (default): the rule fires on matching hits with
    index in ``[nth, nth + times)`` (0-based, per-rule counter).

    Probabilistic mode (``probability`` set): every matching hit fires
    with that probability, drawn from the plan's seeded RNG, up to
    ``times`` total firings (``times=None`` = unbounded).
    """

    site: str
    #: substring that must appear in the site detail ("" matches all)
    match: str = ""
    nth: int = 0
    times: Optional[int] = 1
    probability: Optional[float] = None
    fault: Fault = field(default_factory=Fault)

    def __post_init__(self) -> None:
        if self.site not in ALL_SITES:
            raise ValueError(f"unknown fault site {self.site!r}; "
                             f"choose from {ALL_SITES}")


@dataclass(frozen=True)
class FaultRecord:
    """One fired fault, as logged by the plan (the determinism witness)."""

    site: str
    detail: str
    hit_index: int
    rule_index: int
    kind: str
    error: str = ""


class FaultPlan:
    """A seeded, thread-safe schedule of faults.

    One plan owns one RNG and one set of per-rule hit counters; all
    updates happen under a lock so concurrent server workers consult it
    safely (the *plan* stays consistent even when thread interleaving
    makes the hit order nondeterministic — single-threaded execution is
    fully deterministic).
    """

    def __init__(self, rules: List[FaultRule] = (), seed: int = 0) -> None:
        self.rules: List[FaultRule] = list(rules)
        self.seed = seed
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._hits: List[int] = [0] * len(self.rules)
        self._fired: List[int] = [0] * len(self.rules)
        self.log: List[FaultRecord] = []

    def on_hit(self, site: str, detail: str) -> Optional[Fault]:
        """Consult the schedule for one site hit; returns the fault to
        apply, or None.  The first firing rule wins, but every matching
        rule's hit counter advances (so rules are independent)."""
        with self._lock:
            fired: Optional[Fault] = None
            for idx, rule in enumerate(self.rules):
                if rule.site != site:
                    continue
                if rule.match and rule.match not in detail:
                    continue
                hit = self._hits[idx]
                self._hits[idx] = hit + 1
                if fired is not None:
                    continue
                if rule.probability is not None:
                    fire = ((rule.times is None
                             or self._fired[idx] < rule.times)
                            and self._rng.random() < rule.probability)
                else:
                    fire = (hit >= rule.nth
                            and (rule.times is None
                                 or hit < rule.nth + rule.times))
                if fire:
                    self._fired[idx] += 1
                    fault = rule.fault
                    err = "" if fault.kind != KIND_ERROR else \
                        (fault.error or DEFAULT_ERRORS[site]).__name__
                    self.log.append(FaultRecord(
                        site=site, detail=detail, hit_index=hit,
                        rule_index=idx, kind=fault.kind, error=err))
                    fired = fault
            return fired

    def to_spec(self) -> dict:
        """A JSON/pickle-safe description of the plan's *schedule*
        (rules + seed, not the runtime hit counters).  A worker process
        rebuilt from this spec replays the same deterministic fault
        sequence — the bridge that lets one chaos campaign reach
        spawned shard workers (:mod:`repro.shard.worker`), which cannot
        inherit a live plan across an exec boundary."""
        rules = []
        for rule in self.rules:
            rules.append({
                "site": rule.site, "match": rule.match, "nth": rule.nth,
                "times": rule.times, "probability": rule.probability,
                "kind": rule.fault.kind,
                "error": rule.fault.error.__name__
                if rule.fault.error is not None else None,
                "latency_s": rule.fault.latency_s,
                "message": rule.fault.message,
            })
        return {"seed": self.seed, "rules": rules}

    @staticmethod
    def from_spec(spec: dict) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_spec` output.  Error types are
        resolved by name against :mod:`repro.errors` and must subclass
        :class:`~repro.errors.ReproError`."""
        from . import errors as errors_mod
        rules = []
        for r in spec.get("rules", ()):
            error = None
            if r.get("error"):
                error = getattr(errors_mod, r["error"], None)
                if not (isinstance(error, type)
                        and issubclass(error, ReproError)):
                    raise ValueError(
                        f"fault spec names unknown error type {r['error']!r}")
            rules.append(FaultRule(
                site=r["site"], match=r.get("match", ""),
                nth=r.get("nth", 0), times=r.get("times", 1),
                probability=r.get("probability"),
                fault=Fault(kind=r.get("kind", KIND_ERROR), error=error,
                            latency_s=r.get("latency_s", 0.0),
                            message=r.get("message", ""))))
        return FaultPlan(rules, seed=spec.get("seed", 0))

    def fired_by_site(self) -> Dict[str, int]:
        """How many faults fired at each site (for coverage reports)."""
        with self._lock:
            out: Dict[str, int] = {}
            for rec in self.log:
                out[rec.site] = out.get(rec.site, 0) + 1
            return out

    @property
    def num_fired(self) -> int:
        with self._lock:
            return len(self.log)

    def __repr__(self) -> str:
        return (f"FaultPlan(seed={self.seed}, rules={len(self.rules)}, "
                f"fired={len(self.log)})")


#: Context-local plan (fault_scope) — never inherited by new threads.
_plan_var: ContextVar[Optional[FaultPlan]] = ContextVar(
    "repro_fault_plan", default=None)
#: Process-global plan (global_fault_scope) — seen by every thread.
_global_plan: Optional[FaultPlan] = None


def active_plan() -> Optional[FaultPlan]:
    """The plan in effect for this context (context-local wins)."""
    plan = _plan_var.get()
    return plan if plan is not None else _global_plan


@contextmanager
def fault_scope(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Install ``plan`` for the current context only."""
    token = _plan_var.set(plan)
    try:
        yield plan
    finally:
        _plan_var.reset(token)


@contextmanager
def global_fault_scope(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Install ``plan`` process-wide (chaos campaigns reach server
    worker threads through this).  Not reentrant across plans: nesting
    a second global plan raises."""
    global _global_plan
    if _global_plan is not None:
        raise RuntimeError("a global fault plan is already installed")
    _global_plan = plan
    try:
        yield plan
    finally:
        _global_plan = None


def maybe_inject(site: str, detail: str = "") -> None:
    """Fault checkpoint: no-op without a plan; under a plan, consult the
    schedule and sleep or raise the scheduled fault."""
    plan = _plan_var.get()
    if plan is None:
        plan = _global_plan
        if plan is None:
            return
    fault = plan.on_hit(site, detail)
    if fault is None:
        return
    if fault.kind == KIND_LATENCY:
        time.sleep(fault.latency_s)
        return
    err_type = fault.error or DEFAULT_ERRORS[site]
    exc = err_type(fault.message
                   or f"injected {site} fault at {detail or site!r}")
    exc.injected = True
    raise exc


class StateAuditor:
    """Asserts that fault recovery left no torn process state behind.

    Captures a baseline at construction — the current context's
    profiler stack depth and pool-scope stack depth, plus (optionally)
    a compile cache's in-flight count and a pool's bytes-in-use — and
    :meth:`audit` reports every divergence from it.  Run it around any
    code that may fail: a clean audit proves the try/finally discipline
    held everywhere the failure unwound through.
    """

    def __init__(self, cache=None, pool=None) -> None:
        self._cache = cache
        self._pool = pool
        (self._profiler_depth, self._pool_depth, self._inflight,
         self._in_use) = self._observe()

    def _observe(self):
        from .runtime import profiler, storage
        depth = len(profiler.active_profiles())
        pools = len(storage.active_pools())
        inflight = self._cache.inflight_count() \
            if self._cache is not None else 0
        in_use = self._pool.in_use_bytes if self._pool is not None else 0
        return depth, pools, inflight, in_use

    def audit(self) -> List[str]:
        """Every way the current state diverges from the baseline."""
        depth, pools, inflight, in_use = self._observe()
        violations: List[str] = []
        if depth != self._profiler_depth:
            violations.append(
                f"profiler stack depth {depth} != baseline "
                f"{self._profiler_depth} (leaked profile frame)")
        if pools != self._pool_depth:
            violations.append(
                f"pool-scope stack depth {pools} != baseline "
                f"{self._pool_depth} (leaked pool scope)")
        if inflight != self._inflight:
            violations.append(
                f"compile-cache in-flight slots {inflight} != baseline "
                f"{self._inflight} (waiters would block forever)")
        if in_use != self._in_use:
            violations.append(
                f"pool bytes-in-use {in_use} != baseline {self._in_use} "
                f"(leaked allocations)")
        return violations

    def assert_clean(self) -> None:
        violations = self.audit()
        if violations:
            raise TornStateError("; ".join(violations))
