"""Horizontal parallelization (paper §4.2.2).

Once TensorSSA functionalization has made a loop body pure, and that
body consists entirely of kernel-compilable ops, the whole loop can run
as a single mapped kernel: iterations no longer dispatch through the
interpreter, and (on real hardware) independent iterations execute in
parallel.  This pass marks such loops ``horizontal``; the fusion
runtime executes them in one launch, deriving the captured free values
from the body on demand (:func:`repro.ir.graph.free_values`).

Must run *after* TensorSSA conversion (a body containing mutation is
never eligible) and *before* vertical fusion (so the loop body is still
raw ops, not an opaque group).
"""

from __future__ import annotations

from ..backend.kernels import OP_IMPLS
from ..ir.graph import Block, Graph


def _is_compilable_body(body: Block) -> bool:
    if not body.nodes:
        return False
    for node in body.nodes:
        if node.blocks:
            return False
        if node.op == "prim::Constant":
            continue
        if node.op not in OP_IMPLS or len(node.outputs) != 1:
            return False
    return True


def _mark_block(block: Block) -> int:
    count = 0
    for node in block.nodes:
        for inner in node.blocks:
            count += _mark_block(inner)
        if node.op != "prim::Loop" or node.attrs.get("horizontal"):
            continue
        body = node.blocks[0]
        if not _is_compilable_body(body):
            continue
        # captures are NOT snapshotted here: every consumer derives
        # them from the body via ir.graph.free_values, so later passes
        # may freely rewrite captured values without desynchronizing
        node.attrs["horizontal"] = True
        count += 1
    return count


def parallelize_loops(graph: Graph) -> int:
    """Mark eligible loops as horizontal; returns how many."""
    return _mark_block(graph.block)
