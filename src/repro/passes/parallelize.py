"""Horizontal parallelization (paper §4.2.2).

Once TensorSSA functionalization has made a loop body pure, and that
body consists entirely of kernel-compilable ops, the whole loop can run
as a single mapped kernel: iterations no longer dispatch through the
interpreter, and (on real hardware) independent iterations execute in
parallel.  This pass marks such loops ``horizontal`` and records the
free values their bodies capture; the fusion runtime executes them in
one launch.

Must run *after* TensorSSA conversion (a body containing mutation is
never eligible) and *before* vertical fusion (so the loop body is still
raw ops, not an opaque group).
"""

from __future__ import annotations

from typing import List

from ..backend.kernels import OP_IMPLS
from ..ir.graph import Block, Graph, Node, Value


def _body_free_values(body: Block) -> List[Value]:
    """Values referenced by the body that are defined outside it."""
    local = {id(p) for p in body.params}
    for node in body.nodes:
        for out in node.outputs:
            local.add(id(out))
    free: List[Value] = []
    seen = set()

    def visit(v: Value) -> None:
        if id(v) in local or id(v) in seen:
            return
        seen.add(id(v))
        free.append(v)

    for node in body.nodes:
        for v in node.inputs:
            visit(v)
    for r in body.returns:
        visit(r)
    return free


def _is_compilable_body(body: Block) -> bool:
    if not body.nodes:
        return False
    for node in body.nodes:
        if node.blocks:
            return False
        if node.op == "prim::Constant":
            continue
        if node.op not in OP_IMPLS or len(node.outputs) != 1:
            return False
    return True


def _mark_block(block: Block) -> int:
    count = 0
    for node in block.nodes:
        for inner in node.blocks:
            count += _mark_block(inner)
        if node.op != "prim::Loop" or node.attrs.get("horizontal"):
            continue
        body = node.blocks[0]
        if not _is_compilable_body(body):
            continue
        node.attrs["horizontal"] = True
        node.attrs["captures"] = _body_free_values(body)
        count += 1
    return count


def parallelize_loops(graph: Graph) -> int:
    """Mark eligible loops as horizontal; returns how many."""
    return _mark_block(graph.block)
