"""Vertical fusion (paper §4.2.1): group fusable ops into
``prim::FusionGroup`` kernels.

The fuser is parameterized so one implementation serves every pipeline:

* baselines (TorchScript+NNC / +nvFuser styles) fuse only pure
  elementwise ops and treat every mutating op and every control-flow
  node as a **hard barrier** — mutation may write through any alias, so
  no computation may be hoisted across it.  This is precisely the
  limitation the paper attributes to existing compilers (§1, §2.2).
* the TensorSSA pipeline runs after functionalization: no mutations
  remain inside blocks, so view ops and ``immut::*`` Access/Assign ops
  join groups, and barriers all but disappear — the fusion scope crosses
  what used to be mutation points.

Groups are placed at the position of their *first* member; joining
requires every external input to be defined before that point, which
keeps the move sound for pure members.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

from ..ir.graph import Block, Graph, Node, Value
from ..ops import registry
from ..ops.schema import OpKind

#: constants with these payload types are copied into group bodies
_INLINABLE_CONST_TYPES = (int, float, bool, str, type(None), list, tuple)


@dataclass
class FuserConfig:
    """Fusion policy knobs, one instance per compiler pipeline."""

    name: str = "nnc"
    #: fuse view ops / immut Access-Assign ops (safe only after
    #: functionalization)
    fuse_views: bool = False
    #: ops (by name) excluded even if their schema says fusable —
    #: models weaker fusers like nvFuser's narrower coverage
    excluded_ops: Set[str] = field(default_factory=set)
    min_group_size: int = 2
    #: kernel-size budget: real fusers cap how many ops one generated
    #: kernel may contain (None = unlimited, TensorSSA's NNC backend)
    max_group_size: int = None


@dataclass
class _Group:
    start: int                     # index of first member in block
    members: List[Node] = field(default_factory=list)
    member_ids: Set[int] = field(default_factory=set)

    def add(self, node: Node) -> None:
        self.members.append(node)
        self.member_ids.add(id(node))


def is_fusable(node: Node, config: FuserConfig) -> bool:
    """May this node join a fusion group under ``config``?"""
    if node.op in config.excluded_ops:
        return False
    if node.blocks or len(node.outputs) != 1:
        return False
    schema = node.schema
    if schema.kind is OpKind.VIEW:
        return config.fuse_views
    if schema.kind is OpKind.PURE and schema.fusable:
        if node.op.startswith("immut::") and not config.fuse_views:
            return False
        return True
    return False


def is_barrier(node: Node) -> bool:
    """Nodes no computation may be reordered across."""
    return node.schema.kind in (OpKind.MUTATING, OpKind.CONTROL)


def _can_join(node: Node, group: _Group, block: Block,
              positions: dict) -> bool:
    for v in node.inputs:
        producer = v.node
        if producer is None or producer.owning_block is not block:
            continue  # param or outer-scope value: always available
        if producer.op == "prim::Constant":
            continue  # constants are freely movable
        if id(producer) in group.member_ids:
            continue
        pos = positions.get(id(producer))
        if pos is None or pos >= group.start:
            return False  # produced inside the block after the group
    return True


def _is_substantial(node: Node) -> bool:
    """Does fusing this op actually save a kernel launch?  View ops and
    scalar arithmetic are free outside a group (metadata / host work),
    so a group made only of those would *add* a launch."""
    if node.schema.kind is OpKind.VIEW:
        return False
    if node.op.startswith("prim::"):
        return False
    return True


def _collect_groups(block: Block, config: FuserConfig) -> List[_Group]:
    groups: List[_Group] = []
    open_groups: List[_Group] = []
    positions = {id(n): i for i, n in enumerate(block.nodes)}
    for idx, node in enumerate(block.nodes):
        if is_barrier(node):
            open_groups.clear()
            continue
        if not is_fusable(node, config):
            continue
        joined: Optional[_Group] = None
        for group in reversed(open_groups):
            if config.max_group_size is not None and \
                    len(group.members) >= config.max_group_size:
                continue
            if _can_join(node, group, block, positions):
                joined = group
                break
        if joined is None:
            joined = _Group(start=idx)
            open_groups.append(joined)
            groups.append(joined)
        joined.add(node)
    return [g for g in groups
            if len(g.members) >= config.min_group_size
            and any(_is_substantial(n) for n in g.members)]


def _materialize(block: Block, group: _Group, graph: Graph) -> Node:
    from ..ir import types as T

    members = group.members
    member_ids = group.member_ids

    # classify the values flowing across the group boundary
    external: List[Value] = []
    inline_consts: dict = {}
    for node in members:
        for v in node.inputs:
            producer = v.node
            if producer is not None and id(producer) in member_ids:
                continue
            if producer is not None and producer.op == "prim::Constant" \
                    and isinstance(producer.attrs.get("value"),
                                   _INLINABLE_CONST_TYPES):
                inline_consts[id(v)] = producer.attrs["value"]
                continue
            if all(e is not v for e in external):
                external.append(v)
    outputs: List[Value] = []
    for node in members:
        out = node.output()
        if any(not (isinstance(u.user, Node)
                    and id(u.user) in member_ids) for u in out.uses):
            outputs.append(out)

    fg = graph.create("prim::FusionGroup", external)
    body = fg.add_block()
    vmap = {}
    for v in external:
        vmap[id(v)] = body.add_param(v.name.split(".")[0], v.type)
    for node in members:
        clone = Node(node.op, graph)
        clone.attrs = dict(node.attrs)
        for v in node.inputs:
            if id(v) in vmap:
                clone.add_input(vmap[id(v)])
            elif id(v) in inline_consts:
                const = graph.constant(inline_consts[id(v)])
                body.append(const)
                vmap[id(v)] = const.output()
                clone.add_input(const.output())
            else:
                raise AssertionError(
                    f"fusion: unmapped input %{v.name} of {node.op}")
        new_out = clone.add_output(node.output().name.split(".")[0],
                                   node.output().type)
        vmap[id(node.output())] = new_out
        body.append(clone)
    for out in outputs:
        body.add_return(vmap[id(out)])
        fg_out = fg.add_output(out.name.split(".")[0], out.type)
        out.replace_all_uses_with(fg_out)
    fg.attrs["num_member_ops"] = len(members)

    block.insert(group.start, fg)
    # Non-inlinable constants (tensors, dtypes) captured as group inputs
    # may sit after the insertion point — constants are movable, so hoist.
    for v in external:
        producer = v.node
        if producer is not None and producer.op == "prim::Constant" \
                and producer.owning_block is block:
            idx = block.nodes.index(producer)
            if idx > block.nodes.index(fg):
                block.remove(producer)
                block.insert(block.nodes.index(fg), producer)
    for node in reversed(members):
        node.destroy()
    _ = T
    return fg


def _is_epilogue_copy(node: Node) -> bool:
    """The input-mutation sink TensorSSA appends at graph end."""
    return (node.op == "aten::copy_" and node.inputs
            and node.input(0).is_param
            and node.input(0).param_block.owning_node is None)


def _effective_config(block: Block, config: FuserConfig) -> FuserConfig:
    """Views may only be fused (materialized as copies) in blocks whose
    storage is never mutated — a view fused before a mutation would
    capture stale data for uses after it."""
    if not config.fuse_views:
        return config
    for node in block.nodes:
        if node.schema.kind is OpKind.MUTATING and \
                not _is_epilogue_copy(node):
            from dataclasses import replace
            return replace(config, fuse_views=False)
    return config


def _fuse_block(block: Block, config: FuserConfig, graph: Graph) -> int:
    count = 0
    for node in list(block.nodes):
        if node.attrs.get("horizontal"):
            continue  # the whole loop already runs as one mapped kernel
        for inner in node.blocks:
            count += _fuse_block(inner, config, graph)
    for group in reversed(_collect_groups(block,
                                          _effective_config(block, config))):
        _materialize(block, group, graph)
        count += 1
    return count


def fuse(graph: Graph, config: Optional[FuserConfig] = None) -> int:
    """Run the fuser; returns the number of fusion groups created."""
    registry.get("prim::FusionGroup")  # sanity: op registered
    return _fuse_block(graph.block, config or FuserConfig(), graph)
