"""Constant folding for scalar ``prim::*`` arithmetic.

Folds pure scalar ops whose operands are all constants; leaves tensor
ops alone (materializing tensor constants would hide memory traffic the
benchmarks need to observe)."""

from __future__ import annotations

from ..errors import ReproError, classify
from ..faults import SITE_PASS, maybe_inject
from ..ir.graph import Block, Graph
from ..ops import registry

_FOLDABLE_PREFIXES = ("prim::add", "prim::sub", "prim::mul",
                      "prim::truediv", "prim::floordiv", "prim::mod",
                      "prim::pow", "prim::neg", "prim::gt", "prim::lt",
                      "prim::ge", "prim::le", "prim::eq", "prim::ne",
                      "prim::and", "prim::or", "prim::not", "prim::min",
                      "prim::max")


def _fold_block(block: Block, graph: Graph) -> bool:
    changed = False
    for node in list(block.nodes):
        for inner in node.blocks:
            changed |= _fold_block(inner, graph)
        if node.op not in _FOLDABLE_PREFIXES:
            continue
        payloads = []
        for v in node.inputs:
            if v.node is None or v.node.op != "prim::Constant":
                payloads = None
                break
            payloads.append(v.node.attrs["value"])
        if payloads is None:
            continue
        try:
            # per-fold fault checkpoint: infra failures during folding
            # (injected by the chaos harness) must surface as typed
            # errors, not silently leave the op unfolded
            maybe_inject(SITE_PASS, f"constant_fold:{node.op}")
            result = registry.get(node.op).fn(*payloads)
        except ReproError:
            # injected faults and typed infrastructure errors: masking
            # them as "leave unfolded" hides real failures from the
            # degradation ladder and the chaos availability gate
            raise
        except MemoryError as exc:
            raise classify(exc) from exc  # fatal: typed OOMError
        except (ArithmeticError, ValueError, TypeError):
            # expected evaluation failure (div by zero, domain error,
            # bad operand type): constant folding legitimately skips
            # the op and leaves it for runtime
            continue
        const = graph.constant(result)
        block.insert_before(node, const)
        node.output().replace_all_uses_with(const.output())
        node.destroy()
        changed = True
    return changed


def constant_fold(graph: Graph) -> bool:
    """Fold pure scalar prim:: ops over constant operands, to a fixed point."""
    changed = False
    while _fold_block(graph.block, graph):
        changed = True
    return changed
