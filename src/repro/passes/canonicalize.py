"""Canonicalization: algebraic identities and control-flow folding.

Two families of rewrites:

* **control-flow folding** — always safe: ``prim::If`` on a constant
  condition splices the taken branch inline; ``prim::Loop`` with a
  constant zero trip count forwards its initial values.
* **algebraic identities** — ``x + 0 -> x``, ``x * 1 -> x``,
  ``neg(neg(x)) -> x``, nested ``clamp`` merging, etc.  These replace a
  *fresh tensor* with an existing value, which changes aliasing; they
  are therefore applied only when the graph is free of (non-epilogue)
  mutation — i.e. after TensorSSA conversion — where aliasing is
  unobservable.
"""

from __future__ import annotations

from typing import Optional

from ..ir.graph import Block, Graph, Node, Value
from ..ops.schema import OpKind


def _const_payload(v: Value):
    if v.node is not None and v.node.op == "prim::Constant":
        return v.node.attrs["value"]
    return _NOT_CONST


_NOT_CONST = object()


def _is_scalar_const(v: Value, value) -> bool:
    payload = _const_payload(v)
    return isinstance(payload, (int, float)) and not isinstance(
        payload, bool) and payload == value


def _graph_is_pure(graph: Graph) -> bool:
    from .fusion import _is_epilogue_copy
    for node in graph.walk():
        if node.schema.kind is OpKind.MUTATING and \
                not _is_epilogue_copy(node):
            return False
    return True


# ---------------------------------------------------------------------------
# control-flow folding
# ---------------------------------------------------------------------------

def _splice_block(node: Node, taken: Block) -> None:
    """Inline ``taken``'s nodes in place of ``node`` and forward its
    returns to the node's outputs."""
    block = node.owning_block
    anchor = block.nodes.index(node)
    for inner in list(taken.nodes):
        taken.remove(inner)
        block.insert(anchor, inner)
        anchor += 1
    for out, ret in zip(node.outputs, list(taken.returns)):
        out.replace_all_uses_with(ret)
    node.destroy()


def _fold_constant_if(node: Node) -> bool:
    cond = _const_payload(node.input(0))
    if cond is _NOT_CONST or not isinstance(cond, bool):
        return False
    _splice_block(node, node.blocks[0] if cond else node.blocks[1])
    return True


def _fold_dead_loop(node: Node) -> bool:
    trip = _const_payload(node.input(0))
    init_cond = _const_payload(node.input(1))
    if trip == 0 or init_cond is False:
        for out, init in zip(node.outputs, node.inputs[2:]):
            out.replace_all_uses_with(init)
        node.destroy()
        return True
    return False


# ---------------------------------------------------------------------------
# algebraic identities (pure graphs only)
# ---------------------------------------------------------------------------

def _identity_operand(node: Node) -> Optional[Value]:
    """The input this node is equivalent to, if any."""
    op = node.op
    if op == "aten::add":
        if _is_scalar_const(node.input(1), 0):
            return node.input(0)
        if _is_scalar_const(node.input(0), 0):
            return node.input(1)
    elif op == "aten::sub" and _is_scalar_const(node.input(1), 0):
        return node.input(0)
    elif op == "aten::mul":
        if _is_scalar_const(node.input(1), 1):
            return node.input(0)
        if _is_scalar_const(node.input(0), 1):
            return node.input(1)
    elif op == "aten::div" and _is_scalar_const(node.input(1), 1):
        return node.input(0)
    elif op == "aten::neg":
        inner = node.input(0).node
        if inner is not None and inner.op == "aten::neg":
            return inner.input(0)
    elif op == "aten::relu":
        inner = node.input(0).node
        if inner is not None and inner.op in ("aten::relu",
                                              "aten::sigmoid",
                                              "aten::exp"):
            # already non-negative
            return node.input(0)
    elif op == "aten::transpose":
        inner = node.input(0).node
        if inner is not None and inner.op == "aten::transpose" and \
                _const_payload(node.input(1)) == _const_payload(
                    inner.input(1)) and \
                _const_payload(node.input(2)) == _const_payload(
                    inner.input(2)) and \
                _const_payload(node.input(1)) is not _NOT_CONST:
            return inner.input(0)
    return None


def _merge_clamp(node: Node, graph: Graph) -> bool:
    if node.op != "aten::clamp":
        return False
    inner = node.input(0).node
    if inner is None or inner.op != "aten::clamp":
        return False
    bounds = []
    for n in (inner, node):
        lo, hi = _const_payload(n.input(1)), _const_payload(n.input(2))
        if lo is _NOT_CONST or hi is _NOT_CONST:
            return False
        bounds.append((lo, hi))
    (lo1, hi1), (lo2, hi2) = bounds

    def pick(a, b, fn):
        if a is None:
            return b
        if b is None:
            return a
        return fn(a, b)

    lo = pick(lo1, lo2, max)
    hi = pick(hi1, hi2, min)
    lo_c, hi_c = graph.constant(lo), graph.constant(hi)
    block = node.owning_block
    block.insert_before(node, lo_c)
    block.insert_before(node, hi_c)
    node.set_input(0, inner.input(0))
    node.set_input(1, lo_c.output())
    node.set_input(2, hi_c.output())
    return True


def _canon_block(block: Block, graph: Graph, pure: bool) -> bool:
    changed = False
    for node in list(block.nodes):
        if node.owning_block is not block:
            continue  # spliced away by an earlier fold
        for inner in node.blocks:
            changed |= _canon_block(inner, graph, pure)
        if node.op == "prim::If":
            changed |= _fold_constant_if(node)
            continue
        if node.op == "prim::Loop" and not node.attrs.get("horizontal"):
            changed |= _fold_dead_loop(node)
            continue
        if not pure:
            continue
        replacement = _identity_operand(node)
        if replacement is not None:
            node.output().replace_all_uses_with(replacement)
            node.destroy()
            changed = True
            continue
        changed |= _merge_clamp(node, graph)
    return changed


def canonicalize(graph: Graph) -> bool:
    """Run folds to a fixed point; returns True when anything changed."""
    pure = _graph_is_pure(graph)
    any_change = False
    while _canon_block(graph.block, graph, pure):
        any_change = True
        pure = _graph_is_pure(graph)
    return any_change
