"""Loop unrolling for constant trip counts (tracing-compiler behaviour).

TorchDynamo executes Python loops at trace time, so a loop whose trip
count is a compile-time constant appears *unrolled* in the captured
graph.  This pass reproduces that: ``prim::Loop`` nodes with a constant
trip count up to ``max_trip`` and an always-true condition are expanded
in place.  Larger (or dynamic) loops are left intact — those are the
graph breaks the cost model charges Python-interpreter time for.
"""

from __future__ import annotations

from typing import Dict

from ..ir.graph import Block, Graph, Node, Value

DEFAULT_MAX_TRIP = 64


def _const_of(v: Value):
    if v.node is not None and v.node.op == "prim::Constant":
        return v.node.attrs["value"]
    return None


def _is_static_for_loop(node: Node) -> bool:
    trip = _const_of(node.input(0))
    if not isinstance(trip, int):
        return False
    init_cond = _const_of(node.input(1))
    if init_cond is not True:
        return False
    body = node.blocks[0]
    next_cond = _const_of(body.returns[0])
    return next_cond is True


def _seed_outer_refs(body: Block, vmap: Dict[int, Value]) -> None:
    """Map every value the body references but does not define to
    itself (outer scope passes straight through the unroll)."""
    defined = {id(p) for p in body.params}
    for inner in body.walk():
        for out in inner.outputs:
            defined.add(id(out))
        for b in inner.blocks:
            for p in b.params:
                defined.add(id(p))
    refs = list(body.returns)
    for inner in body.walk():
        refs.extend(inner.inputs)
        for b in inner.blocks:
            refs.extend(b.returns)
    for v in refs:
        if id(v) not in defined:
            vmap.setdefault(id(v), v)


def _clone_into(block: Block, anchor_idx: int, body: Block, graph: Graph,
                vmap: Dict[int, Value]) -> int:
    """Clone body nodes before position ``anchor_idx``; returns the new
    anchor index.  ``vmap`` must already map the body params; outer
    references are seeded to pass through unchanged."""
    from ..ir.clone import _clone_node

    _seed_outer_refs(body, vmap)
    for inner in body.nodes:
        clone = _clone_node(inner, block, graph, vmap)
        block.remove(clone)
        block.insert(anchor_idx, clone)
        anchor_idx += 1
    return anchor_idx


def _unroll_block(block: Block, graph: Graph, max_trip: int) -> int:
    count = 0
    for node in list(block.nodes):
        for inner in node.blocks:
            count += _unroll_block(inner, graph, max_trip)
        if node.op != "prim::Loop" or not _is_static_for_loop(node):
            continue
        trip = _const_of(node.input(0))
        if trip > max_trip:
            continue
        body = node.blocks[0]
        carried = list(node.inputs[2:])
        anchor = block.nodes.index(node)
        for i in range(trip):
            vmap: Dict[int, Value] = {}
            iter_const = graph.constant(i)
            block.insert(anchor, iter_const)
            anchor += 1
            vmap[id(body.params[0])] = iter_const.output()
            for p, cur in zip(body.params[1:], carried):
                vmap[id(p)] = cur
            anchor = _clone_into(block, anchor, body, graph, vmap)
            carried = [vmap[id(r)] for r in body.returns[1:]]
        for out, final in zip(node.outputs, carried):
            out.replace_all_uses_with(final)
        node.destroy()
        count += 1
    return count


def unroll_loops(graph: Graph, max_trip: int = DEFAULT_MAX_TRIP) -> int:
    """Unroll static-trip loops; returns how many were expanded."""
    return _unroll_block(graph.block, graph, max_trip)
