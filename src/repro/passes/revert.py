"""Revert unfused Assign operators back to mutable form (paper §3.2).

"The greatest strength of TensorSSA lies in its flexibility, as the
operators can either be fused and compiled or be converted back to the
original mutable operators."

An ``immut::*_assign`` that fusion did not absorb executes as a full
clone-and-write kernel.  When its base value has no other consumer, the
clone is wasted: we can steal the base's buffer and write in place —
``view + copy_`` — exactly the mutable code the conversion started
from, but now *proven* local (single consumer, same block, no captured
references), so the side effect cannot escape.

Runs after fusion in the TensorSSA pipeline; the reintroduced mutation
is invisible to any later pass because none run after it except DCE.
"""

from __future__ import annotations

from typing import Optional

from ..ir import types as T
from ..ir.graph import Graph, Node, Value

#: assign op -> the view op whose window it writes (None = whole tensor)
_ASSIGN_TO_VIEW = {
    "immut::assign": None,
    "immut::select_assign": "aten::select",
    "immut::slice_assign": "aten::slice",
    "immut::narrow_assign": "aten::narrow",
    "immut::reshape_assign": "aten::reshape",
    "immut::permute_assign": "aten::permute",
    "immut::transpose_assign": "aten::transpose",
    "immut::squeeze_assign": "aten::squeeze",
    "immut::unsqueeze_assign": "aten::unsqueeze",
    "immut::flatten_assign": "aten::flatten",
}


def _protected_values(graph: Graph) -> set:
    """Values horizontal loops capture from their bodies' free values:
    their producers must stay alive under their original identity."""
    from ..ir.graph import free_values
    protected = set()
    for node in graph.walk():
        if not node.attrs.get("horizontal") or not node.blocks:
            continue
        for v in free_values(node.blocks[0]):
            protected.add(id(v))
    return protected


def _buffer_owner(base: Value) -> Optional[Node]:
    """The node whose output buffer we would steal, or None when the
    base does not own its storage (graph input, constant, block param,
    or a view/alias — mutating those would write through to storage
    with uses we have not analyzed)."""
    from ..ops.schema import OpKind
    node = base.node
    if node is None or node.op == "prim::Constant":
        return None
    if node.kind not in (OpKind.PURE, OpKind.CONTROL):
        return None
    if node.kind is OpKind.CONTROL and node.op != "prim::FusionGroup":
        return None  # If/Loop outputs are control-flow aliases
    return node


def _only_earlier_readers(base: Value, assign: Node) -> bool:
    """May we overwrite ``base`` at ``assign``'s position?

    Yes iff every other consumer of ``base`` — and, transitively, every
    consumer of any *alias* of it (view-op outputs) — is a node earlier
    in the same block: those executions already happened and read the
    pre-mutation data.  A later use, a block return, or a use in a
    nested block (re-executed by a loop) blocks the revert."""
    from ..ops.schema import OpKind
    block = assign.owning_block
    order = {id(n): i for i, n in enumerate(block.nodes)}
    own_pos = order[id(assign)]
    stack = [base]
    seen = {id(base)}
    while stack:
        value = stack.pop()
        for use in value.uses:
            user = use.user
            if user is assign and value is base:
                continue
            if not isinstance(user, Node):
                return False  # a return reads the old value at the end
            pos = order.get(id(user))
            if pos is None or pos >= own_pos:
                return False
            if user.kind in (OpKind.VIEW, OpKind.MUTATING) and \
                    user.inputs and user.input(0) is value:
                out = user.output()
                if id(out) not in seen:
                    seen.add(id(out))
                    stack.append(out)
    return True


def _revertible_nodes(block):
    """Walk nodes outside compiled regions: fusion-group bodies and
    horizontal loop bodies execute as kernels and must stay pure."""
    for node in block.nodes:
        if node.op == "prim::FusionGroup":
            continue
        if node.op == "prim::Loop" and node.attrs.get("horizontal"):
            continue
        yield node
        for inner in node.blocks:
            yield from _revertible_nodes(inner)


def _view_root(value: Value) -> Value:
    """``value`` followed through VIEW producers to the storage owner."""
    from ..ops.schema import OpKind
    seen = set()
    while value.node is not None and id(value) not in seen:
        seen.add(id(value))
        node = value.node
        if node.kind is OpKind.VIEW and node.inputs:
            value = node.input(0)
        else:
            break
    return value


def _owned_init(init: Value, loop: Node) -> bool:
    """May the loop steal ``init``'s buffer?  Yes iff the loop is its
    only reader and a pure node in the loop's own block produced it."""
    if len(init.uses) != 1 or init.uses[0].user is not loop:
        return False
    if _buffer_owner(init) is None:
        return False
    return init.defining_block() is loop.owning_block


def _assign_chain(param: Value, ret: Value):
    """The unique top-level chain ``param -> A1 -> ... -> An`` of Assign
    nodes whose final output is ``ret``, every link single-use (so no
    other reader ever sees a pre-write generation), or None."""
    chain = []
    cur = param
    while True:
        if len(cur.uses) != 1:
            return None
        use = cur.uses[0]
        user = use.user
        if not isinstance(user, Node):
            # the block return: a complete chain ends exactly here
            return chain if (chain and cur is ret) else None
        if _ASSIGN_TO_VIEW.get(user.op, "missing") == "missing" \
                or use.index != 0:
            return None
        if user.owning_block is not param.defining_block():
            return None  # nested inside an If: re-execution unproven
        chain.append(user)
        cur = user.output()


def revert_carried_assigns(graph: Graph) -> int:
    """Rewrite loop-carried Assign chains into in-place mutation — the
    revert discipline (paper §3.2) applied across the back edge.

    A carried slot whose body flow is ``param -> assign(s) -> return``,
    each link single-use and seeded by a loop-local buffer nobody else
    reads, re-clones the *entire* carried tensor every iteration just
    to write one window — O(trip × size) memory traffic for O(trip ×
    window) useful work.  The single-use chain proves the buffer is
    uniquely owned along the whole carried orbit, so the body may write
    in place (``view + copy_``) and return the param itself; the
    interpreter then threads one buffer through every iteration.  Runs
    *before* fusion so the fuser sees the mutation as a barrier instead
    of absorbing the clone into a kernel; returns the number of Assigns
    reverted."""
    protected = _protected_values(graph)
    count = 0
    for loop in list(_revertible_nodes(graph.block)):
        if loop.op != "prim::Loop" or loop.attrs.get("horizontal"):
            continue
        body = loop.blocks[0]
        for k in range(len(loop.outputs)):
            init = loop.input(2 + k)
            param = body.params[1 + k]
            ret = body.returns[1 + k]
            if id(init) in protected or id(param) in protected:
                continue
            if not _owned_init(init, loop):
                continue
            chain = _assign_chain(param, ret)
            if chain is None:
                continue
            forbidden = {id(param), id(init)}
            forbidden.update(id(a.output()) for a in chain)
            if any(id(_view_root(a.input(1))) in forbidden for a in chain):
                continue  # the written window would read itself
            for a in chain:
                base = a.input(0)
                view_op = _ASSIGN_TO_VIEW[a.op]
                if view_op is None:
                    target = base
                else:
                    view = graph.create(view_op,
                                        [base] + list(a.inputs[2:]),
                                        ["rv"], [T.TensorType()])
                    body.insert_before(a, view)
                    target = view.output()
                store = graph.create("aten::copy_", [target, a.input(1)],
                                     [base.name.split(".")[0]],
                                     [T.TensorType()])
                body.insert_before(a, store)
                a.output().replace_all_uses_with(base)
                a.destroy()
                count += 1
    return count


def revert_unfused_assigns(graph: Graph) -> int:
    """Rewrite single-consumer Assigns into in-place mutation; returns
    how many were reverted."""
    protected = _protected_values(graph)
    count = 0
    for node in list(_revertible_nodes(graph.block)):
        view_op = _ASSIGN_TO_VIEW.get(node.op, "missing")
        if view_op == "missing":
            continue
        base, src = node.input(0), node.input(1)
        if id(node.output()) in protected or id(base) in protected:
            continue
        if _buffer_owner(base) is None:
            continue
        if base.defining_block() is not node.owning_block:
            continue  # crossing a loop would accumulate the mutation
        if not _only_earlier_readers(base, node):
            continue  # a later reader needs the pre-assign contents

        block = node.owning_block
        if view_op is None:
            target = base
        else:
            view = graph.create(view_op, [base] + list(node.inputs[2:]),
                                ["rv"], [T.TensorType()])
            block.insert_before(node, view)
            target = view.output()
        store = graph.create("aten::copy_", [target, src],
                             [base.name.split(".")[0]], [T.TensorType()])
        block.insert_before(node, store)
        node.output().replace_all_uses_with(base)
        node.destroy()
        count += 1
    return count
