"""Common subexpression elimination for pure ops.

Operates per block (no cross-block hoisting); keyed on
``(op, input identities, constant payload)``.

Soundness around mutation: two textually identical *reads* of a tensor
are NOT equivalent when its storage is mutated between them, so every
mutating (or control-flow, which may contain mutation) node flushes
cached compute entries that touch tensors.  Constants survive (no
data), and identical *view* ops survive too — a view is metadata, and
both occurrences alias the very same storage region regardless of what
was written in between.  On functionalized (TensorSSA) graphs no
mutations remain and CSE runs at full power.
"""

from __future__ import annotations

from ..ir import types as T
from ..ir.graph import Block, Graph, Node
from ..ops.schema import OpKind

_CSEABLE = (OpKind.PURE, OpKind.CONSTANT, OpKind.VIEW)


def _const_key(node: Node):
    value = node.attrs.get("value")
    try:
        hash(value)
        return value
    except TypeError:
        if isinstance(value, list):
            return ("list",) + tuple(value)
        return id(value)  # tensors etc. — identity only


def _node_key(node: Node):
    if node.op == "prim::Constant":
        return ("prim::Constant", type(node.attrs.get("value")).__name__,
                _const_key(node))
    return (node.op,) + tuple(id(v) for v in node.inputs)


def _reads_tensor_data(node: Node) -> bool:
    """Does this cached entry's result depend on tensor *contents*?"""
    if node.op == "prim::Constant":
        return False
    if node.kind is OpKind.VIEW:
        return False  # metadata only; aliases track mutation by design
    return any(isinstance(v.type, (T.TensorType, T.AnyType, T.ListType,
                                   T.TupleType))
               for v in node.inputs)


def _cse_block(block: Block) -> bool:
    changed = False
    seen = {}
    for node in list(block.nodes):
        for inner in node.blocks:
            changed |= _cse_block(inner)
        if node.kind in (OpKind.MUTATING, OpKind.CONTROL):
            # storage may have changed: flush data-dependent entries
            seen = {k: n for k, n in seen.items()
                    if not _reads_tensor_data(n)}
            continue
        if node.kind not in _CSEABLE or node.blocks:
            continue
        if len(node.outputs) != 1:
            continue
        key = _node_key(node)
        prior = seen.get(key)
        if prior is None:
            seen[key] = node
            continue
        node.output().replace_all_uses_with(prior.output())
        node.destroy()
        changed = True
    return changed


def cse(graph: Graph) -> bool:
    """Deduplicate pure ops per block (mutation-aware); returns True on change."""
    changed = False
    while _cse_block(graph.block):
        changed = True
    return changed
