"""Shape specialization (tracing-compiler behaviour).

TorchDynamo specializes each compiled graph on the example inputs'
shapes (guards re-check them per call).  This pass folds
``aten::size(input, dim)`` / ``aten::numel`` / ``aten::dim`` queries on
*graph inputs* into constants, which in turn makes loop trip counts
constant and unrollable.  Scripted pipelines (TorchScript, TensorSSA)
deliberately do **not** run it — they stay shape-generic, as in PyTorch.
"""

from __future__ import annotations

from typing import Sequence

from ..ir.graph import Graph
from ..runtime.tensor import Tensor


def specialize_shapes(graph: Graph, example_args: Sequence[object]) -> int:
    """Fold input shape queries given example arguments; returns the
    number of folded nodes."""
    shapes = {}
    for param, arg in zip(graph.inputs, example_args):
        if isinstance(arg, Tensor):
            shapes[id(param)] = arg.shape
        elif isinstance(arg, (int, bool)):
            shapes[id(param)] = arg  # scalar inputs specialize too
    folded = 0
    for node in list(graph.walk()):
        value = None
        if node.op == "aten::size" and node.inputs and \
                id(node.input(0)) in shapes:
            shape = shapes[id(node.input(0))]
            dim_v = node.input(1) if len(node.inputs) > 1 else None
            if dim_v is not None and dim_v.node is not None and \
                    dim_v.node.op == "prim::Constant" and \
                    isinstance(shape, tuple):
                value = shape[dim_v.node.attrs["value"]]
        elif node.op == "aten::numel" and id(node.input(0)) in shapes:
            shape = shapes[id(node.input(0))]
            if isinstance(shape, tuple):
                value = 1
                for s in shape:
                    value *= s
        elif node.op == "aten::dim" and id(node.input(0)) in shapes:
            shape = shapes[id(node.input(0))]
            if isinstance(shape, tuple):
                value = len(shape)
        if value is None:
            continue
        const = graph.constant(value)
        node.owning_block.insert_before(node, const)
        node.output().replace_all_uses_with(const.output())
        node.destroy()
        folded += 1
    # specialize *scalar* graph inputs (Dynamo guards on int args)
    for param, arg in zip(graph.inputs, example_args):
        if isinstance(arg, (int, bool)) and not isinstance(arg, Tensor) \
                and param.uses:
            const = graph.constant(arg)
            graph.block.insert(0, const)
            param.replace_all_uses_with(const.output())
            folded += 1
    return folded
