"""Shape specialization (tracing-compiler behaviour).

TorchDynamo specializes each compiled graph on the example inputs'
shapes (guards re-check them per call).  This pass folds
``aten::size(input, dim)`` / ``aten::numel`` / ``aten::dim`` queries on
*graph inputs* into constants, which in turn makes loop trip counts
constant and unrollable.  Scripted pipelines (TorchScript, TensorSSA)
deliberately do **not** run it — they stay shape-generic, as in PyTorch.

When a shape-family compile is active (``repro.symshape``), every fold
records the matching equality guard (``s_k == extent``) on the family:
the folded constant is only correct while that dim keeps its example
extent, so a later lookup at a different extent must be a guard miss
(recompile) rather than a wrong replay — exactly Dynamo's guard
behaviour.
"""

from __future__ import annotations

from typing import Sequence

from ..ir.graph import Graph
from ..runtime.tensor import Tensor
from ..symshape.family import record_specialization_guard


def specialize_shapes(graph: Graph, example_args: Sequence[object]) -> int:
    """Fold input shape queries given example arguments; returns the
    number of folded nodes."""
    shapes = {}
    arg_index = {}
    for i, (param, arg) in enumerate(zip(graph.inputs, example_args)):
        if isinstance(arg, Tensor):
            shapes[id(param)] = arg.shape
            arg_index[id(param)] = i
        elif isinstance(arg, (int, bool)):
            shapes[id(param)] = arg  # scalar inputs specialize too
            arg_index[id(param)] = i
    folded = 0
    for node in list(graph.walk()):
        value = None
        guard_dims: Sequence[int] = ()
        if node.op == "aten::size" and node.inputs and \
                id(node.input(0)) in shapes:
            shape = shapes[id(node.input(0))]
            dim_v = node.input(1) if len(node.inputs) > 1 else None
            if dim_v is not None and dim_v.node is not None and \
                    dim_v.node.op == "prim::Constant" and \
                    isinstance(shape, tuple):
                dim = dim_v.node.attrs["value"]
                value = shape[dim]
                guard_dims = (dim % len(shape),)
        elif node.op == "aten::numel" and id(node.input(0)) in shapes:
            shape = shapes[id(node.input(0))]
            if isinstance(shape, tuple):
                value = 1
                for s in shape:
                    value *= s
                # the product is only stable if every extent is
                guard_dims = range(len(shape))
        elif node.op == "aten::dim" and id(node.input(0)) in shapes:
            shape = shapes[id(node.input(0))]
            if isinstance(shape, tuple):
                value = len(shape)  # rank is structural: no guard
        if value is None:
            continue
        src = arg_index.get(id(node.input(0)))
        if src is not None:
            shape = shapes[id(node.input(0))]
            for dim in guard_dims:
                record_specialization_guard(src, dim, shape[dim])
        const = graph.constant(value)
        node.owning_block.insert_before(node, const)
        node.output().replace_all_uses_with(const.output())
        node.destroy()
        folded += 1
    # specialize *scalar* graph inputs (Dynamo guards on int args)
    for i, (param, arg) in enumerate(zip(graph.inputs, example_args)):
        if isinstance(arg, (int, bool)) and not isinstance(arg, Tensor) \
                and param.uses:
            if not isinstance(arg, bool):
                # bools split families structurally; ints need a guard
                record_specialization_guard(i, None, arg)
            const = graph.constant(arg)
            graph.block.insert(0, const)
            param.replace_all_uses_with(const.output())
            folded += 1
    return folded
