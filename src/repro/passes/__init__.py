"""repro.passes — graph transformations."""

from .constant_fold import constant_fold
from .cse import cse
from .dce import dce
from .fusion import FuserConfig, fuse
from .parallelize import parallelize_loops
from .pass_manager import PASS_METRICS_KEY, PassManager, PassMetric

__all__ = ["dce", "cse", "constant_fold", "fuse", "FuserConfig",
           "parallelize_loops", "PassManager", "PassMetric",
           "PASS_METRICS_KEY"]

from .specialize import specialize_shapes
from .unroll import unroll_loops

__all__ += ["specialize_shapes", "unroll_loops"]

from .revert import revert_carried_assigns, revert_unfused_assigns

__all__ += ["revert_carried_assigns", "revert_unfused_assigns"]

from .canonicalize import canonicalize

__all__ += ["canonicalize"]
