"""A tiny pass manager: named passes, optional verification between."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Tuple

from ..ir import verify
from ..ir.graph import Graph


@dataclass
class PassManager:
    """Runs a sequence of graph passes, verifying after each."""

    passes: List[Tuple[str, Callable[[Graph], object]]] = field(
        default_factory=list)
    verify_each: bool = True

    def add(self, name: str, fn: Callable[[Graph], object]) -> "PassManager":
        self.passes.append((name, fn))
        return self

    def run(self, graph: Graph) -> dict:
        """Run all passes; returns {pass_name: pass_result}."""
        results = {}
        for name, fn in self.passes:
            results[name] = fn(graph)
            if self.verify_each:
                try:
                    verify(graph)
                except AssertionError as exc:
                    raise AssertionError(
                        f"IR verification failed after pass {name!r}: "
                        f"{exc}") from exc
        return results
