"""A tiny pass manager: named passes, optional verification between.

Each run also records per-pass telemetry — wall time and the node-count
delta the pass caused — returned under the ``"__pass_metrics__"`` key of
the results dict (a list of :class:`PassMetric`), which the pipelines
forward to their stats and ``tools/inspect`` prints.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Tuple

from ..faults import SITE_PASS, maybe_inject
from ..ir import verify
from ..ir.graph import Graph
from ..obs import trace as obs_trace

#: results-dict key holding the list of :class:`PassMetric`
PASS_METRICS_KEY = "__pass_metrics__"


@dataclass
class PassMetric:
    """Telemetry for one pass execution."""

    name: str
    wall_ms: float
    nodes_before: int
    nodes_after: int

    @property
    def node_delta(self) -> int:
        """Change in graph node count (negative means nodes removed)."""
        return self.nodes_after - self.nodes_before

    def __repr__(self) -> str:
        sign = "+" if self.node_delta >= 0 else ""
        return (f"PassMetric({self.name}: {self.wall_ms:.2f}ms, "
                f"{self.nodes_before}->{self.nodes_after} nodes "
                f"({sign}{self.node_delta}))")


def _count_nodes(graph: Graph) -> int:
    return sum(1 for _ in graph.walk())


@dataclass
class PassManager:
    """Runs a sequence of graph passes, verifying after each."""

    passes: List[Tuple[str, Callable[[Graph], object]]] = field(
        default_factory=list)
    verify_each: bool = True

    def add(self, name: str, fn: Callable[[Graph], object]) -> "PassManager":
        self.passes.append((name, fn))
        return self

    def run(self, graph: Graph) -> dict:
        """Run all passes; returns {pass_name: pass_result} plus the
        per-pass telemetry list under :data:`PASS_METRICS_KEY`."""
        results = {}
        metrics: List[PassMetric] = []
        with obs_trace.span("pass_manager:run", cat="compile",
                            graph=graph.name, num_passes=len(self.passes)):
            for name, fn in self.passes:
                # the "pass" fault checkpoint: an injected CompileError
                # raises before the pass mutates the graph, so the caller
                # sees a clean compile failure, not a half-transformed IR
                maybe_inject(SITE_PASS, name)
                nodes_before = _count_nodes(graph)
                with obs_trace.span(f"pass:{name}", cat="compile") as sp:
                    start = time.perf_counter()
                    results[name] = fn(graph)
                    wall_ms = (time.perf_counter() - start) * 1e3
                nodes_after = _count_nodes(graph)
                if sp is not None:
                    sp.args["nodes_before"] = nodes_before
                    sp.args["nodes_after"] = nodes_after
                metrics.append(PassMetric(name=name, wall_ms=wall_ms,
                                          nodes_before=nodes_before,
                                          nodes_after=nodes_after))
                if self.verify_each:
                    with obs_trace.span(f"pass:verify:{name}",
                                        cat="compile"):
                        try:
                            verify(graph)
                        except AssertionError as exc:
                            raise AssertionError(
                                f"IR verification failed after pass "
                                f"{name!r}: {exc}") from exc
        results[PASS_METRICS_KEY] = metrics
        return results
