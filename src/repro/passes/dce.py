"""Dead code elimination.

Removes pure nodes whose outputs are unused, bottom-up, to a fixed
point.  Runs after TensorSSA conversion (the paper applies DCE to clean
the re-access chains, §4.1.3) and after fusion.
"""

from __future__ import annotations

from ..ir.graph import Block, Graph, Node
from ..ops.schema import OpKind

#: ops that must never be removed even when their outputs are unused
_ALWAYS_KEEP = set()


def has_side_effects(node: Node) -> bool:
    """Does this node (or anything nested in it) mutate state?"""
    if node.kind is OpKind.MUTATING:
        return True
    if node.op in _ALWAYS_KEEP:
        return True
    for block in node.blocks:
        for inner in block.nodes:
            if has_side_effects(inner):
                return True
    return False


def _sweep_block(block: Block) -> bool:
    from ..ir.graph import bulk_destroy
    changed = False
    dead = []
    dead_ids = set()

    def is_dead_use(use) -> bool:
        from ..ir.graph import Node
        return isinstance(use.user, Node) and id(use.user) in dead_ids

    for node in reversed(block.nodes):
        for inner in node.blocks:
            changed |= _sweep_block(inner)
        if has_side_effects(node):
            continue
        if all(all(is_dead_use(u) for u in out.uses)
               for out in node.outputs):
            dead.append(node)
            dead_ids.add(id(node))
    if dead:
        bulk_destroy(dead)
        changed = True
    return changed


def _live_values_in_loop(node) -> set:
    """Backward liveness over a loop body: values reachable from the
    continue-condition, from carried slots whose outputs are used, and
    from side-effecting nodes.  Dead return slots are exactly those not
    in this set."""
    body = node.blocks[0]
    live = set()
    stack = []

    def mark(v) -> None:
        if id(v) not in live:
            live.add(id(v))
            stack.append(v)

    mark(body.returns[0])
    for k, out in enumerate(node.outputs):
        if out.uses:
            mark(body.returns[1 + k])
    for inner in body.walk():
        if inner.schema.kind is OpKind.MUTATING:
            for v in inner.inputs:
                mark(v)
    while stack:
        v = stack.pop()
        producer = v.node
        if producer is None:
            # a loop body param (of this loop or a nested one): the
            # matching carried return feeds it next iteration
            pb = v.param_block
            owner = pb.owning_node if pb is not None else None
            if owner is not None and owner.op == "prim::Loop" and \
                    v in pb.params[1:]:
                k = pb.params.index(v) - 1
                mark(pb.returns[1 + k])
                mark(owner.inputs[2 + k])
            continue
        for inp in producer.inputs:
            mark(inp)
        for b in producer.blocks:
            for r in b.returns:
                mark(r)
    return live


def _prune_loop_carries(block: Block) -> bool:
    """Drop loop-carried slots whose body param and node output are both
    unused (dead accumulation left by functionalization)."""
    changed = False
    for node in list(block.nodes):
        for inner in node.blocks:
            changed |= _prune_loop_carries(inner)
        if node.op != "prim::Loop":
            continue
        body = node.blocks[0]
        n_carried = len(node.inputs) - 2
        # Phase A: a slot is dead when its loop output is unused AND
        # nothing live in the body transitively reads its return value
        # (the return feeds the next iteration's param, so a body that
        # consumes the param for *live* work keeps the slot alive).
        live = _live_values_in_loop(node)
        for k in range(n_carried):
            out = node.outputs[k]
            param = body.params[1 + k]
            ret = body.returns[1 + k]
            if not out.uses and ret is not param and id(ret) not in live:
                body.set_return(1 + k, param)
                changed = True
        # Phase B: drop slots that are pure identity plumbing.
        for k in reversed(range(n_carried)):
            param = body.params[1 + k]
            out = node.outputs[k]
            ret = body.returns[1 + k]
            param_busy = any(
                not (isinstance(u.user, Block) and u.user is body
                     and u.index == 1 + k)
                for u in param.uses)
            if param_busy or out.uses:
                continue
            # the return slot's only consumer is the loop plumbing itself
            for use in list(ret.uses):
                if use.user is body and use.index == 1 + k:
                    ret.uses.remove(use)
            del body.returns[1 + k]
            for r in body.returns[1 + k:]:
                for use in r.uses:
                    if use.user is body and use.index > 1 + k:
                        use.index -= 1
            node.remove_input(2 + k)
            body.params.remove(param)
            node.outputs.remove(out)
            changed = True
    return changed


def _prune_if_outputs(block: Block) -> bool:
    """Drop prim::If outputs nobody reads (and their return slots)."""
    changed = False
    for node in list(block.nodes):
        for inner in node.blocks:
            changed |= _prune_if_outputs(inner)
        if node.op != "prim::If":
            continue
        for k in reversed(range(len(node.outputs))):
            out = node.outputs[k]
            if out.uses:
                continue
            for b in node.blocks:
                ret = b.returns[k]
                for use in list(ret.uses):
                    if use.user is b and use.index == k:
                        ret.uses.remove(use)
                del b.returns[k]
                for r in b.returns[k:]:
                    for use in r.uses:
                        if use.user is b and use.index > k:
                            use.index -= 1
            node.outputs.remove(out)
            changed = True
    return changed


def dce(graph: Graph) -> bool:
    """Run to fixed point; returns True when anything was removed."""
    any_change = False
    while True:
        changed = _sweep_block(graph.block)
        changed |= _prune_loop_carries(graph.block)
        changed |= _prune_if_outputs(graph.block)
        if not changed:
            return any_change
        any_change = True
