"""YOLACT post-processing (paper workload #3, CV).

Box decode (shared with SSD), prototype-mask assembly via one matmul,
then the *crop* step: an imperative nested loop zeroing every mask
outside its box using data-dependent slice bounds.  Crop is the
notorious mutation-heavy part of YOLACT's post-processing.
"""

from __future__ import annotations

import repro.runtime as rt

from .common import make_priors, synth

NAME = "yolact"
DOMAIN = "cv"
NUM_CLASSES = 12
NUM_PRIORS = 1024
NUM_KEEP = 12
PROTO_SIZE = 48
NUM_PROTOS = 16


def yolact_postprocess(loc, conf, priors, proto, coeffs):
    """YOLACT decode + mask assembly + data-dependent crop loop (imperative)."""
    b = loc.shape[0]

    # -- box decode with in-place slice arithmetic -----------------------
    boxes = rt.zeros_like(loc)
    boxes[:, :, 0:2] = priors[:, 0:2] + loc[:, :, 0:2] * 0.1 * priors[:, 2:4]
    boxes[:, :, 2:4] = priors[:, 2:4] * rt.exp(
        rt.clamp(loc[:, :, 2:4] * 0.2, -4.0, 4.0))
    boxes[:, :, 0:2] -= boxes[:, :, 2:4] / 2.0
    boxes[:, :, 2:4] += boxes[:, :, 0:2]
    boxes = rt.clamp(boxes, 0.0, 1.0)

    # -- candidate selection ----------------------------------------------
    scores = rt.softmax(conf, 2)
    obj = scores[:, :, 1:].max(2)
    top_scores, idx = obj.topk(12, dim=1)
    idx_box = idx.unsqueeze(2).expand((b, 12, 4))
    top_boxes = rt.gather(boxes, 1, idx_box)
    idx_coef = idx.unsqueeze(2).expand((b, 12, 16))
    top_coeffs = rt.gather(coeffs, 1, idx_coef)

    # -- mask assembly: proto (B, S, S, P) x coeffs (B, K, P) -------------
    flat = proto.reshape((b, 2304, 16))
    masks = rt.sigmoid(flat @ top_coeffs.transpose(1, 2))
    masks = masks.reshape((b, 48, 48, 12))

    # -- crop: zero outside each box (data-dependent slice mutation) ------
    cropped = masks.clone()
    for bi in range(b):
        for k in range(12):
            x1 = int(top_boxes[bi, k, 0].item() * 48.0)
            y1 = int(top_boxes[bi, k, 1].item() * 48.0)
            x2 = int(top_boxes[bi, k, 2].item() * 48.0) + 1
            y2 = int(top_boxes[bi, k, 3].item() * 48.0) + 1
            cropped[bi, 0:y1, :, k] = 0.0
            cropped[bi, y2:, :, k] = 0.0
            cropped[bi, :, 0:x1, k] = 0.0
            cropped[bi, :, x2:, k] = 0.0
    mask_area = cropped.sum(1).sum(1)
    return top_boxes, top_scores, cropped, mask_area


def make_inputs(batch_size: int = 1, seq_len: int = 64, seed: int = 0):
    """Seeded synthetic inputs for this workload (batch_size / seq_len scale the sweep axes)."""
    del seq_len
    loc = synth((batch_size, NUM_PRIORS, 4), seed, -1.0, 1.0)
    conf = synth((batch_size, NUM_PRIORS, NUM_CLASSES), seed + 1, -3.0, 3.0)
    priors = make_priors(NUM_PRIORS, seed=seed + 2)
    proto = synth((batch_size, PROTO_SIZE, PROTO_SIZE, NUM_PROTOS),
                  seed + 3, -1.0, 1.0)
    coeffs = synth((batch_size, NUM_PRIORS, NUM_PROTOS), seed + 4,
                   -1.0, 1.0)
    return loc, conf, priors, proto, coeffs


MODEL_FN = yolact_postprocess
