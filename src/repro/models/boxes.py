"""Bounding-box math used by the CV post-processing workloads.

Plain Python functions: the scripting frontend inlines them, so they
appear in model graphs as regular tensor ops (and get functionalized /
fused along with their callers).
"""

from __future__ import annotations

import repro.runtime as rt


def cxcywh_to_xyxy_(boxes):
    """In-place corner conversion — the classic SSD/YOLO idiom that
    partially mutates through slices (exactly the paper's §2.1 case)."""
    boxes[:, :, 0:2] -= boxes[:, :, 2:4] / 2.0
    boxes[:, :, 2:4] += boxes[:, :, 0:2]
    return boxes


def pairwise_iou_against(box, boxes):
    """IoU of one box (B, 4) against K boxes (B, K, 4), xyxy format."""
    bx = box.unsqueeze(1)
    lt = rt.maximum(bx[:, :, 0:2], boxes[:, :, 0:2])
    rb = rt.minimum(bx[:, :, 2:4], boxes[:, :, 2:4])
    wh = rt.clamp(rb - lt, 0.0)
    inter = wh[:, :, 0] * wh[:, :, 1]
    area_a = (bx[:, :, 2] - bx[:, :, 0]) * (bx[:, :, 3] - bx[:, :, 1])
    area_b = ((boxes[:, :, 2] - boxes[:, :, 0])
              * (boxes[:, :, 3] - boxes[:, :, 1]))
    return inter / (area_a + area_b - inter + 1e-9)


def greedy_nms_suppress(boxes, iou_threshold: float, k: int):
    """Greedy NMS over ``k`` score-sorted candidates (xyxy boxes).

    Returns a 0/1 suppression mask (B, k); implemented as an imperative
    loop with slice mutations — the pattern the paper's CV workloads
    spend their time in."""
    suppressed = rt.zeros((boxes.shape[0], k))
    for i in range(k - 1):
        cur = boxes[:, i]
        ious = pairwise_iou_against(cur, boxes)
        overlap = (ious > iou_threshold).to(rt.float32)
        alive = 1.0 - suppressed[:, i]
        tail = overlap[:, i + 1:] * alive.unsqueeze(1)
        suppressed[:, i + 1:] = rt.maximum(suppressed[:, i + 1:], tail)
    return suppressed
