"""YOLOv3 post-processing (paper workload #1, CV).

Three detection heads are decoded with the classic YOLO idiom — slice
mutations applying sigmoid/exp transforms in place — then concatenated,
converted to corner form (more slice mutations), ranked, and run through
a greedy NMS loop.  The backbone is synthetic (TensorRT runs it in the
paper); everything here is the imperative tensor program the compilers
compete on.
"""

from __future__ import annotations

import repro.runtime as rt

from .boxes import cxcywh_to_xyxy_, greedy_nms_suppress
from .common import make_grid, synth

NAME = "yolov3"
DOMAIN = "cv"
NUM_CLASSES = 20
NMS_KEEP = 32


def _decode_level(pred, grid, anchor, stride: float):
    """Decode one YOLO head in place on a cloned buffer."""
    out = pred.clone()
    out[:, :, 0:2] = (rt.sigmoid(pred[:, :, 0:2]) + grid) * stride
    out[:, :, 2:4] = rt.exp(rt.clamp(pred[:, :, 2:4], -4.0, 4.0)) * anchor
    out[:, :, 4:] = rt.sigmoid(pred[:, :, 4:])
    return out


def yolov3_postprocess(p0, p1, p2, g0, g1, g2, a0, a1, a2):
    """YOLOv3 3-level decode (in-place slice transforms) + greedy NMS (imperative)."""
    d0 = _decode_level(p0, g0, a0, 8.0)
    d1 = _decode_level(p1, g1, a1, 16.0)
    d2 = _decode_level(p2, g2, a2, 32.0)
    preds = rt.cat([d0, d1, d2], 1)

    boxes = preds[:, :, 0:4].clone()
    boxes = cxcywh_to_xyxy_(boxes)

    best_cls = preds[:, :, 5:].max(2)
    scores = preds[:, :, 4] * best_cls
    top_scores, idx = scores.topk(32, dim=1)
    b = scores.shape[0]
    idx3 = idx.unsqueeze(2).expand((b, 32, 4))
    top_boxes = rt.gather(boxes, 1, idx3)

    suppressed = greedy_nms_suppress(top_boxes, 0.5, 32)
    final_scores = top_scores * (1.0 - suppressed)
    return top_boxes, final_scores


def make_inputs(batch_size: int = 1, seq_len: int = 64, seed: int = 0):
    """Synthetic head outputs for 3 levels; seq_len is unused (CV)."""
    del seq_len
    sizes = (3072, 768, 192)
    channels = 5 + NUM_CLASSES
    preds = [synth((batch_size, n, channels), seed + i, -2.0, 2.0)
             for i, n in enumerate(sizes)]
    grids = [make_grid(n) for n in sizes]
    anchors = [synth((n, 2), seed + 10 + i, 8.0, 64.0)
               for i, n in enumerate(sizes)]
    return (preds[0], preds[1], preds[2], grids[0], grids[1], grids[2],
            anchors[0], anchors[1], anchors[2])


MODEL_FN = yolov3_postprocess
