"""SSD post-processing (paper workload #2, CV).

The textbook SSD decode: variance-weighted offsets applied to priors
through in-place slice arithmetic, corner conversion in place, then an
imperative per-class loop that writes thresholded class scores into an
output buffer — a loop whose body becomes a single mapped kernel under
TensorSSA's horizontal parallelization.
"""

from __future__ import annotations

import repro.runtime as rt

from .boxes import cxcywh_to_xyxy_
from .common import make_priors, synth

NAME = "ssd"
DOMAIN = "cv"
NUM_CLASSES = 21
NUM_PRIORS = 4096


def ssd_postprocess(loc, conf, priors):
    """SSD prior decode (slice mutations) + per-class filter loop (imperative)."""
    b = loc.shape[0]
    n = loc.shape[1]
    c = conf.shape[2]

    # -- decode (variances 0.1 / 0.2), partial mutation via slices -------
    boxes = rt.zeros_like(loc)
    boxes[:, :, 0:2] = priors[:, 0:2] + loc[:, :, 0:2] * 0.1 * priors[:, 2:4]
    boxes[:, :, 2:4] = priors[:, 2:4] * rt.exp(
        rt.clamp(loc[:, :, 2:4] * 0.2, -4.0, 4.0))
    boxes = cxcywh_to_xyxy_(boxes)

    # -- per-class confidence filtering (imperative loop) -----------------
    scores = rt.softmax(conf, 2)
    filtered = rt.zeros((b, n, c))
    for k in range(1, c):  # class 0 is background
        cls_scores = scores[:, :, k]
        keep = (cls_scores > 0.05).to(rt.float32)
        filtered[:, :, k] = cls_scores * keep

    best_scores = filtered.max(2)
    return boxes, filtered, best_scores


def make_inputs(batch_size: int = 1, seq_len: int = 64, seed: int = 0):
    """Seeded synthetic inputs for this workload (batch_size / seq_len scale the sweep axes)."""
    del seq_len
    loc = synth((batch_size, NUM_PRIORS, 4), seed, -1.0, 1.0)
    conf = synth((batch_size, NUM_PRIORS, NUM_CLASSES), seed + 1, -3.0, 3.0)
    priors = make_priors(NUM_PRIORS, seed=seed + 2)
    return loc, conf, priors


MODEL_FN = ssd_postprocess
