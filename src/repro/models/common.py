"""Shared helpers for the workload models.

The paper runs model *backbones* through TensorRT and compares compilers
only on the imperative post-processing / recurrent parts; we therefore
synthesize backbone outputs with seeded generators of realistic shapes
and value ranges.
"""

from __future__ import annotations

import numpy as np

import repro.runtime as rt


def synth(shape, seed, low=-1.0, high=1.0):
    """A seeded float32 tensor in [low, high) — a synthetic backbone
    activation."""
    rng = np.random.default_rng(seed)
    arr = rng.uniform(low, high, size=tuple(shape)).astype(np.float32)
    return rt.from_numpy(arr)


def synth_positive(shape, seed, scale=1.0):
    """A seeded float32 tensor uniform in [0, scale)."""
    rng = np.random.default_rng(seed)
    arr = (rng.random(tuple(shape)) * scale).astype(np.float32)
    return rt.from_numpy(arr)


def synth_int(shape, seed, low, high):
    """A seeded int64 tensor uniform in [low, high)."""
    rng = np.random.default_rng(seed)
    return rt.from_numpy(rng.integers(low, high,
                                      size=tuple(shape)).astype(np.int64))


def make_grid(n, seed=None):
    """Cell-center coordinates for ``n`` anchor positions: (n, 2)."""
    side = int(np.ceil(np.sqrt(n)))
    ys, xs = np.meshgrid(np.arange(side), np.arange(side), indexing="ij")
    pts = np.stack([xs.ravel(), ys.ravel()], axis=-1)[:n]
    return rt.from_numpy(pts.astype(np.float32))


def make_priors(n, seed=0):
    """SSD-style prior boxes (cx, cy, w, h) in [0, 1]: (n, 4)."""
    rng = np.random.default_rng(seed)
    cxcy = rng.random((n, 2)).astype(np.float32)
    wh = (rng.random((n, 2)) * 0.3 + 0.05).astype(np.float32)
    return rt.from_numpy(np.concatenate([cxcy, wh], axis=1))
