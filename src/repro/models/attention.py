"""Single-head attention with imperative causal masking (workload #8).

Scores are computed with one batched matmul; the causal mask is then
applied *imperatively* — a loop over timesteps writing -inf into each
row's future positions through slice mutations.  After TensorSSA this
loop is pure and becomes a single mapped kernel (horizontal
parallelization), the paper's §4.2.2 showcase.
"""

from __future__ import annotations

import repro.runtime as rt

from .common import synth

NAME = "attention"
DOMAIN = "module"
DIM = 256


def attention(q, k, v):
    """q, k, v: (B, T, D)."""
    t_steps = q.shape[1]
    scale = 1.0 / float(q.shape[2]) ** 0.5
    scores = (q @ k.transpose(1, 2)) * scale
    for t in range(t_steps - 1):
        scores[:, t, t + 1:] = -1000000000.0
    probs = rt.softmax(scores, 2)
    return probs @ v, probs


def make_inputs(batch_size: int = 1, seq_len: int = 64, seed: int = 0):
    """Seeded synthetic inputs for this workload (batch_size / seq_len scale the sweep axes)."""
    q = synth((batch_size, seq_len, DIM), seed, -1.0, 1.0)
    k = synth((batch_size, seq_len, DIM), seed + 1, -1.0, 1.0)
    v = synth((batch_size, seq_len, DIM), seed + 2, -1.0, 1.0)
    return q, k, v


MODEL_FN = attention
