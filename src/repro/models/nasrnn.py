"""NASRNN cell inference loop (paper workload #5, NLP).

The NAS-discovered recurrent cell (Zoph et al.) is a deep tree of
elementwise ops over eight gate slices — the canonical memory-bound RNN
body used by TorchScript/TVM benchmark suites.  Imperative features:
gate slicing (views), per-step buffer writes (mutation), sequence loop.
"""

from __future__ import annotations

import repro.runtime as rt

from .common import synth

NAME = "nasrnn"
DOMAIN = "nlp"
HIDDEN = 256
INPUT = 256


def nasrnn_inference(x, wx, wh, h0):
    """x: (T, B, D); wx: (8H, D); wh: (8H, H)."""
    t_steps = x.shape[0]
    b = x.shape[1]
    hidden = h0.shape[1]
    h = h0.clone()
    out = rt.zeros((t_steps, b, hidden))
    for t in range(t_steps):
        xp = rt.linear(x[t], wx)
        hp = rt.linear(h, wh)
        # eight gate units, combined as in the NAS cell's binary tree
        u0 = rt.sigmoid(xp[:, 0:hidden]) * rt.tanh(hp[:, 0:hidden])
        u1 = rt.relu(xp[:, hidden:2 * hidden]
                     + hp[:, hidden:2 * hidden])
        u2 = rt.sigmoid(xp[:, 2 * hidden:3 * hidden]
                        + hp[:, 2 * hidden:3 * hidden])
        u3 = rt.tanh(xp[:, 3 * hidden:4 * hidden]
                     * hp[:, 3 * hidden:4 * hidden])
        u4 = rt.sigmoid(xp[:, 4 * hidden:5 * hidden]
                        + hp[:, 4 * hidden:5 * hidden])
        u5 = rt.tanh(xp[:, 5 * hidden:6 * hidden]
                     + hp[:, 5 * hidden:6 * hidden])
        u6 = rt.relu(xp[:, 6 * hidden:7 * hidden]
                     * hp[:, 6 * hidden:7 * hidden])
        u7 = rt.sigmoid(xp[:, 7 * hidden:] + hp[:, 7 * hidden:])
        # combine pairwise
        c0 = rt.tanh(u0 + u1)
        c1 = rt.sigmoid(u2 * u3)
        c2 = rt.tanh(u4 * u5)
        c3 = rt.sigmoid(u6 + u7)
        d0 = rt.tanh(c0 * c1)
        d1 = rt.tanh(c2 + c3)
        h = rt.tanh(d0 * d1)
        out[t] = h
    return out, h


def make_inputs(batch_size: int = 1, seq_len: int = 64, seed: int = 0):
    """Seeded synthetic inputs for this workload (batch_size / seq_len scale the sweep axes)."""
    x = synth((seq_len, batch_size, INPUT), seed, -1.0, 1.0)
    wx = synth((8 * HIDDEN, INPUT), seed + 1, -0.3, 0.3)
    wh = synth((8 * HIDDEN, HIDDEN), seed + 2, -0.3, 0.3)
    h0 = synth((batch_size, HIDDEN), seed + 3, -1.0, 1.0)
    return x, wx, wh, h0


MODEL_FN = nasrnn_inference
