"""Manual LSTM inference loop (paper workload #6, NLP).

The cell is written imperatively: gate pre-activations sliced out of one
projection (views), cell/hidden state updated elementwise, and each
step's hidden state written into an output buffer through a select
mutation — tensor views and mutations "distributed within the loop used
for iterating over sequence length" (paper §5.2).
"""

from __future__ import annotations

import repro.runtime as rt

from .common import synth

NAME = "lstm"
DOMAIN = "nlp"
HIDDEN = 256
INPUT = 256


def lstm_inference(x, wx, wh, bias, h0, c0):
    """x: (T, B, D); wx: (4H, D); wh: (4H, H); bias: (4H,)."""
    t_steps = x.shape[0]
    b = x.shape[1]
    hidden = h0.shape[1]
    h = h0.clone()
    c = c0.clone()
    out = rt.zeros((t_steps, b, hidden))
    for t in range(t_steps):
        gates = rt.linear(x[t], wx, bias) + rt.linear(h, wh)
        i_g = rt.sigmoid(gates[:, 0:hidden])
        f_g = rt.sigmoid(gates[:, hidden:2 * hidden])
        g_g = rt.tanh(gates[:, 2 * hidden:3 * hidden])
        o_g = rt.sigmoid(gates[:, 3 * hidden:])
        c = f_g * c + i_g * g_g
        h = o_g * rt.tanh(c)
        out[t] = h
    return out, h, c


def make_inputs(batch_size: int = 1, seq_len: int = 64, seed: int = 0):
    """Seeded synthetic inputs for this workload (batch_size / seq_len scale the sweep axes)."""
    x = synth((seq_len, batch_size, INPUT), seed, -1.0, 1.0)
    wx = synth((4 * HIDDEN, INPUT), seed + 1, -0.3, 0.3)
    wh = synth((4 * HIDDEN, HIDDEN), seed + 2, -0.3, 0.3)
    bias = synth((4 * HIDDEN,), seed + 3, -0.1, 0.1)
    h0 = synth((batch_size, HIDDEN), seed + 4, -1.0, 1.0)
    c0 = synth((batch_size, HIDDEN), seed + 5, -1.0, 1.0)
    return x, wx, wh, bias, h0, c0


MODEL_FN = lstm_inference
