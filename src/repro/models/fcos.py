"""FCOS post-processing (paper workload #4, CV).

Anchor-free decode: per-level loops turn (l, t, r, b) distances at each
point into boxes through column-wise in-place writes, fold centerness
into classification scores, concatenate levels, and suppress with the
greedy NMS loop.
"""

from __future__ import annotations

import repro.runtime as rt

from .boxes import greedy_nms_suppress
from .common import make_grid, synth

NAME = "fcos"
DOMAIN = "cv"
NUM_CLASSES = 20
LEVEL_SIZES = (1024, 256, 64)
NMS_KEEP = 24


def _decode_level(cls, ctr, reg, points, stride: float):
    d = rt.exp(rt.clamp(reg, -4.0, 4.0)) * stride
    boxes = rt.zeros_like(reg)
    boxes[:, :, 0] = points[:, 0] * stride - d[:, :, 0]
    boxes[:, :, 1] = points[:, 1] * stride - d[:, :, 1]
    boxes[:, :, 2] = points[:, 0] * stride + d[:, :, 2]
    boxes[:, :, 3] = points[:, 1] * stride + d[:, :, 3]
    centerness = rt.sqrt(rt.sigmoid(ctr))
    scores = rt.sigmoid(cls) * centerness.unsqueeze(2)
    return boxes, scores


def fcos_postprocess(c0, t0, r0, p0, c1, t1, r1, p1, c2, t2, r2, p2):
    """FCOS anchor-free decode + centerness folding + greedy NMS (imperative)."""
    b0, s0 = _decode_level(c0, t0, r0, p0, 8.0)
    b1, s1 = _decode_level(c1, t1, r1, p1, 16.0)
    b2, s2 = _decode_level(c2, t2, r2, p2, 32.0)
    boxes = rt.cat([b0, b1, b2], 1)
    scores = rt.cat([s0, s1, s2], 1)

    best = scores.max(2)
    top_scores, idx = best.topk(24, dim=1)
    b = scores.shape[0]
    idx3 = idx.unsqueeze(2).expand((b, 24, 4))
    top_boxes = rt.gather(boxes, 1, idx3)
    suppressed = greedy_nms_suppress(top_boxes, 0.6, 24)
    return top_boxes, top_scores * (1.0 - suppressed)


def make_inputs(batch_size: int = 1, seq_len: int = 64, seed: int = 0):
    """Seeded synthetic inputs for this workload (batch_size / seq_len scale the sweep axes)."""
    del seq_len
    args = []
    for i, n in enumerate(LEVEL_SIZES):
        args.append(synth((batch_size, n, NUM_CLASSES), seed + 4 * i,
                          -3.0, 3.0))          # cls logits
        args.append(synth((batch_size, n), seed + 4 * i + 1, -2.0, 2.0))
        args.append(synth((batch_size, n, 4), seed + 4 * i + 2, -1.0, 1.0))
        args.append(make_grid(n))
    return tuple(args)


MODEL_FN = fcos_postprocess
