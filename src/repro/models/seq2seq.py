"""seq2seq greedy decoding (paper workload #7, NLP).

An LSTM encoder consumes the source sequence; a greedy LSTM decoder
then emits tokens one at a time — embedding lookup, cell update, output
projection, argmax, and a token-buffer write per step.  The decoder
loop's mix of views, mutations, and data-dependent ops is the paper's
hardest functionalization case among the NLP workloads.
"""

from __future__ import annotations

import repro.runtime as rt

from .common import synth

NAME = "seq2seq"
DOMAIN = "nlp"
HIDDEN = 256
INPUT = 256
VOCAB = 512


def _lstm_step(x_t, h, c, wx, wh, bias, hidden: int):
    gates = rt.linear(x_t, wx, bias) + rt.linear(h, wh)
    i_g = rt.sigmoid(gates[:, 0:hidden])
    f_g = rt.sigmoid(gates[:, hidden:2 * hidden])
    g_g = rt.tanh(gates[:, 2 * hidden:3 * hidden])
    o_g = rt.sigmoid(gates[:, 3 * hidden:])
    c_new = f_g * c + i_g * g_g
    h_new = o_g * rt.tanh(c_new)
    return h_new, c_new

def seq2seq_greedy(src, enc_wx, enc_wh, enc_b, dec_wx, dec_wh, dec_b,
                   embed, w_out, h0, c0, dec_steps: int):
    """src: (T, B, D); embed: (V, H); w_out: (V, H)."""
    hidden = h0.shape[1]
    b = src.shape[1]
    t_enc = src.shape[0]

    # -- encoder -----------------------------------------------------------
    h = h0.clone()
    c = c0.clone()
    for t in range(t_enc):
        h, c = _lstm_step(src[t], h, c, enc_wx, enc_wh, enc_b, hidden)

    # -- greedy decoder -----------------------------------------------------
    tokens = rt.zeros((dec_steps, b), dtype=rt.int64)
    logits_sum = rt.zeros((b, w_out.shape[0]))
    tok = rt.zeros((b,), dtype=rt.int64)
    for t in range(dec_steps):
        emb = rt.embedding(embed, tok)
        h, c = _lstm_step(emb, h, c, dec_wx, dec_wh, dec_b, hidden)
        logits = rt.linear(h, w_out)
        tok = rt.argmax(logits, 1)
        tokens[t] = tok
        logits_sum += rt.softmax(logits, 1)
    return tokens, logits_sum, h


def make_inputs(batch_size: int = 1, seq_len: int = 64, seed: int = 0):
    """Seeded synthetic inputs for this workload (batch_size / seq_len scale the sweep axes)."""
    src = synth((seq_len, batch_size, INPUT), seed, -1.0, 1.0)
    enc_wx = synth((4 * HIDDEN, INPUT), seed + 1, -0.3, 0.3)
    enc_wh = synth((4 * HIDDEN, HIDDEN), seed + 2, -0.3, 0.3)
    enc_b = synth((4 * HIDDEN,), seed + 3, -0.1, 0.1)
    dec_wx = synth((4 * HIDDEN, HIDDEN), seed + 4, -0.3, 0.3)
    dec_wh = synth((4 * HIDDEN, HIDDEN), seed + 5, -0.3, 0.3)
    dec_b = synth((4 * HIDDEN,), seed + 6, -0.1, 0.1)
    embed = synth((VOCAB, HIDDEN), seed + 7, -0.3, 0.3)
    w_out = synth((VOCAB, HIDDEN), seed + 8, -0.3, 0.3)
    h0 = synth((batch_size, HIDDEN), seed + 9, -1.0, 1.0)
    c0 = synth((batch_size, HIDDEN), seed + 10, -1.0, 1.0)
    dec_steps = max(seq_len // 2, 4)
    return (src, enc_wx, enc_wh, enc_b, dec_wx, dec_wh, dec_b, embed,
            w_out, h0, c0, dec_steps)


MODEL_FN = seq2seq_greedy
