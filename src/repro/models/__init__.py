"""repro.models — the paper's eight evaluation workloads."""

from .registry import WORKLOADS, Workload, get_workload, workload_names

__all__ = ["WORKLOADS", "Workload", "get_workload", "workload_names"]
