"""Workload registry: the paper's eight evaluation tasks (§5.1)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from . import (attention, fcos, lstm, nasrnn, seq2seq, ssd, yolact,
               yolov3)


@dataclass(frozen=True)
class Workload:
    name: str
    domain: str            # "cv" | "nlp" | "module"
    model_fn: Callable
    make_inputs: Callable  # (batch_size, seq_len, seed) -> args tuple
    #: does Figure 7 sweep this over batch size?
    batch_sweep: bool = True
    #: does Figure 8 sweep this over sequence length?
    seq_sweep: bool = False


_MODULES = (yolov3, ssd, yolact, fcos, nasrnn, lstm, seq2seq, attention)

WORKLOADS: Dict[str, Workload] = {
    m.NAME: Workload(
        name=m.NAME,
        domain=m.DOMAIN,
        model_fn=m.MODEL_FN,
        make_inputs=m.make_inputs,
        batch_sweep=m.NAME in ("yolov3", "ssd", "yolact", "fcos",
                               "seq2seq", "attention"),
        seq_sweep=m.DOMAIN in ("nlp", "module"),
    )
    for m in _MODULES
}


def get_workload(name: str) -> Workload:
    """Look up a workload spec by name."""
    if name not in WORKLOADS:
        raise KeyError(f"unknown workload {name!r}; "
                       f"choose from {sorted(WORKLOADS)}")
    return WORKLOADS[name]


def workload_names() -> List[str]:
    """All registered workload names, in registry order."""
    return list(WORKLOADS)


def cv_nlp_split() -> Tuple[List[str], List[str]]:
    """Workload names split into (CV, non-CV) groups."""
    cv = [w.name for w in WORKLOADS.values() if w.domain == "cv"]
    other = [w.name for w in WORKLOADS.values() if w.domain != "cv"]
    return cv, other
