"""repro.memplan — static memory planning for functionalized graphs.

Functionalization trades mutation for fresh result buffers, and the
standing critique of that trade is memory inflation: every ``immut::``
access op and loop-carried copy materializes a new tensor.  This
package refutes the critique *statically*: because TensorSSA graphs are
pure, the lifetime of every intermediate is decidable, so a planner can
prove when each buffer dies and recycle it through an arena allocator
— recovering (and often beating) the in-place program's working set.

Three layers:

* :mod:`repro.memplan.liveness` — interval liveness over ``Graph``
  values, nested into ``prim::If``/``prim::Loop`` bodies, with
  view-aliased values merged into shared lifetime classes.
* :mod:`repro.memplan.planner` — slot assignment (greedy linear scan),
  donation/reuse edges, and the cached per-graph :class:`MemoryPlan`.
* executor integration — ``backend.interpreter`` takes a plan and
  releases buffers into a :class:`repro.runtime.storage.MemoryPool`
  at their planned death points.
"""

from .liveness import LifetimeClass, Liveness, compute_liveness
from .planner import (MemoryPlan, PlanSlot, ReuseEdge, format_plan,
                      get_or_build_plan, plan_graph, plans_built)

__all__ = [
    "LifetimeClass",
    "Liveness",
    "compute_liveness",
    "MemoryPlan",
    "PlanSlot",
    "ReuseEdge",
    "plan_graph",
    "get_or_build_plan",
    "format_plan",
    "plans_built",
]
