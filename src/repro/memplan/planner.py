"""Static buffer planning over liveness intervals.

Assigns every releasable lifetime class to an arena *slot* by greedy
linear-scan interval allocation: classes are visited in order of their
definition point; a class whose interval does not overlap a previously
assigned class may inherit its slot (best-fit by static size hint when
shapes are known, first-expired otherwise).  The slot table is the
plan's observable skeleton — the runtime :class:`~repro.runtime.storage.
MemoryPool` performs the byte-exact version of the same policy with
size-bucketed free lists, because most shapes are only known at run
time (the backend JIT-specializes, see ``repro.ir.types``).

The plan also records *reuse edges* — statically provable donations
where a node's fresh output can take over a dying operand's buffer
(legal because TensorSSA removed the aliasing hazards that make
in-place rewriting unsound on the imperative form) — and the rotating
loop-carried slots discovered by the liveness pass.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..analysis.alias import AliasGraph
from ..ir import types as T
from ..ir.graph import Block, Graph, Node, Value
from ..obs import trace as obs_trace
from .liveness import LifetimeClass, Liveness, compute_liveness

__all__ = ["MemoryPlan", "PlanSlot", "ReuseEdge", "plan_graph",
           "get_or_build_plan", "format_plan", "plans_built"]

_DTYPE_BYTES = {"float32": 4, "float64": 8, "int64": 8, "int32": 4,
                "bool": 1}


def _static_nbytes(value: Value,
                   size_env: Optional[Dict[str, int]] = None
                   ) -> Optional[int]:
    """Byte size of a value when its type carries full shape/dtype.

    Falls back to the graph's propagated symbolic shapes
    (``graph._symshapes``, see :mod:`repro.symshape.propagate`)
    evaluated under ``size_env`` — a shape family's max-extent bounds —
    so dynamic-shape artifacts still get best-fit hints.  Hints only
    order slot packing; the runtime pool re-fits by actual bytes.
    """
    typ = value.type
    if isinstance(typ, T.TensorType) and typ.shape is not None:
        numel = 1
        for dim in typ.shape:
            numel *= int(dim)
        return numel * _DTYPE_BYTES.get(typ.dtype or "float32", 4)
    if size_env is None:
        return None
    graph = value.node.graph if value.node is not None else (
        value.param_block.graph if value.param_block is not None else None)
    if graph is None:
        return None
    from ..symshape.propagate import symbolic_nbytes, symbolic_shape_of
    shape = symbolic_shape_of(graph, value)
    dtype = typ.dtype if isinstance(typ, T.TensorType) else None
    return symbolic_nbytes(shape, dtype, size_env)


@dataclass
class PlanSlot:
    """One arena slot: a buffer identity shared by non-overlapping classes."""

    index: int
    classes: List[LifetimeClass] = field(default_factory=list)
    #: static byte hint — the max over occupant hints, None if unknown
    size_hint: Optional[int] = None

    def occupants(self) -> List[str]:
        """Origin names of every class assigned to this slot."""
        return [f"%{c.origin.name}" for c in self.classes]


@dataclass
class ReuseEdge:
    """A statically provable donation: ``consumer``'s output may take
    over ``donor``'s buffer because the donor dies at that node."""

    node: Node
    donor: Value
    output: Value

    def __repr__(self) -> str:
        return (f"%{self.output.name} <- %{self.donor.name} "
                f"[{self.node.op}]")


@dataclass
class MemoryPlan:
    """The planner's result for one graph: slots, schedules, rotation."""

    graph: Graph
    liveness: Liveness
    slots: List[PlanSlot] = field(default_factory=list)
    reuse_edges: List[ReuseEdge] = field(default_factory=list)
    #: max simultaneously-live planned classes in any one block scan
    static_peak_slots: int = 0

    # -- convenience views over the liveness schedule -------------------

    @property
    def release_before(self) -> Dict[int, List[LifetimeClass]]:
        """id(node) -> classes whose buffers are donated before it runs."""
        return self.liveness.release_before

    @property
    def release_after(self) -> Dict[int, List[LifetimeClass]]:
        """id(node) -> classes released once the node completes."""
        return self.liveness.release_after

    @property
    def rotating_slots(self) -> Dict[int, List[int]]:
        """id(loop node) -> carried slots recycled at each back-edge."""
        return self.liveness.rotating_slots

    @property
    def num_planned_classes(self) -> int:
        """How many lifetime classes the plan can release early."""
        return sum(1 for c in self.liveness.classes if c.plannable)

    @property
    def num_classes(self) -> int:
        """Total lifetime classes the liveness analysis discovered."""
        return len(self.liveness.classes)

    def summary(self) -> Dict[str, int]:
        """Small integer summary for pipeline stats and reports."""
        return {
            "mem_slots": len(self.slots),
            "mem_planned_classes": self.num_planned_classes,
            "mem_total_classes": self.num_classes,
            "mem_reuse_edges": len(self.reuse_edges),
            "mem_rotating_loops": len(self.liveness.rotating_slots),
            "mem_static_peak_slots": self.static_peak_slots,
        }


def plan_graph(graph: Graph, alias: Optional[AliasGraph] = None,
               size_env: Optional[Dict[str, int]] = None) -> MemoryPlan:
    """Compute liveness and assign slots; the full planning entry point.

    ``size_env`` (symbol name -> max extent, from a shape family's
    bounds) lets symbolic shapes price best-fit hints; omit it for
    fully concrete graphs.
    """
    liveness = compute_liveness(graph, alias=alias)
    plan = MemoryPlan(graph=graph, liveness=liveness)
    _assign_slots(plan, size_env=size_env)
    _collect_reuse_edges(plan)
    return plan


_plan_lock = threading.Lock()
_plans_built = 0


def plans_built() -> int:
    """How many plans this process has actually computed (memoized
    replays do not count) — the observable the warm-family acceptance
    check reads: a family hit must add 0 to this."""
    return _plans_built


def get_or_build_plan(graph: Graph,
                      size_env: Optional[Dict[str, int]] = None
                      ) -> MemoryPlan:
    """The memoized plan for a graph (cached on the graph object, so a
    compiled artifact plans exactly once — the lock keeps that true
    when concurrent serving workers share the artifact)."""
    global _plans_built
    plan = getattr(graph, "_memplan", None)
    if plan is None or plan.graph is not graph:
        with _plan_lock:
            plan = getattr(graph, "_memplan", None)
            if plan is None or plan.graph is not graph:
                with obs_trace.span("memplan:plan", cat="compile",
                                    graph=graph.name):
                    plan = plan_graph(graph, size_env=size_env)
                _plans_built += 1
                graph._memplan = plan
    return plan


def _assign_slots(plan: MemoryPlan,
                  size_env: Optional[Dict[str, int]] = None) -> None:
    """Greedy linear scan, per home block (lifetimes in different blocks
    use block-local coordinates and are not comparable)."""
    by_block: Dict[int, List[LifetimeClass]] = {}
    for cls in plan.liveness.classes:
        if cls.plannable and cls.home is not None:
            by_block.setdefault(id(cls.home), []).append(cls)

    for classes in by_block.values():
        classes.sort(key=lambda c: c.interval)
        active: List[LifetimeClass] = []
        free: List[PlanSlot] = []
        for cls in classes:
            start, _ = cls.interval
            for other in list(active):
                if other.interval[1] < start:
                    active.remove(other)
                    free.append(plan.slots[other.slot])
            hint = _static_nbytes(cls.origin, size_env=size_env)
            slot = _best_fit(free, hint)
            if slot is None:
                slot = PlanSlot(index=len(plan.slots))
                plan.slots.append(slot)
            else:
                free.remove(slot)
            slot.classes.append(cls)
            if hint is not None:
                slot.size_hint = max(slot.size_hint or 0, hint)
            cls.slot = slot.index
            active.append(cls)
            plan.static_peak_slots = max(plan.static_peak_slots,
                                         len(active))


def _best_fit(free: List[PlanSlot], hint: Optional[int]) -> \
        Optional[PlanSlot]:
    """Smallest free slot whose hint covers the request; any slot when
    sizes are unknown (the runtime pool re-fits by actual bytes)."""
    if not free:
        return None
    if hint is None:
        return free[0]
    fitting = [s for s in free if s.size_hint is None or
               s.size_hint >= hint]
    pool = fitting if fitting else free
    return min(pool, key=lambda s: s.size_hint
               if s.size_hint is not None else 1 << 62)


def _collect_reuse_edges(plan: MemoryPlan) -> None:
    """Pair each donation-released class with the consumer's outputs."""
    for classes in plan.liveness.release_before.values():
        for cls in classes:
            node = cls.release_node
            if node is None:
                continue
            for out in node.outputs:
                out_cls = plan.liveness.class_of.get(id(out))
                if out_cls is not None and out_cls is not cls:
                    plan.reuse_edges.append(
                        ReuseEdge(node=node, donor=cls.origin, output=out))
                    break  # one representative edge per donation


def format_plan(plan: MemoryPlan) -> str:
    """Human-readable plan: slot table, reuse edges, rotation, peak."""
    lines = [f"memory plan for graph {plan.graph.name!r}:",
             f"  classes: {plan.num_classes} total, "
             f"{plan.num_planned_classes} planned, "
             f"static peak {plan.static_peak_slots} slots"]
    lines.append(f"  slot table ({len(plan.slots)} slots):")
    for slot in plan.slots:
        hint = f"{slot.size_hint}B" if slot.size_hint is not None else "?"
        lines.append(f"    s{slot.index:<3} [{hint:>8}] "
                     f"{' -> '.join(slot.occupants())}")
    if plan.reuse_edges:
        lines.append(f"  reuse edges ({len(plan.reuse_edges)}):")
        for edge in plan.reuse_edges:
            lines.append(f"    {edge!r}")
    if plan.rotating_slots:
        lines.append("  rotating loop slots:")
        for node_id, slots in plan.rotating_slots.items():
            lines.append(f"    loop@{node_id & 0xffff:04x}: "
                         f"carried {slots}")
    unplanned = [c for c in plan.liveness.classes if not c.plannable]
    if unplanned:
        lines.append(f"  resident ({len(unplanned)} classes): " + ", ".join(
            f"%{c.origin.name}" for c in unplanned[:12]) +
            (" ..." if len(unplanned) > 12 else ""))
    return "\n".join(lines)
