"""Interval liveness for functionalized graphs.

Computes, for every interpreter-visible tensor value, the program range
over which its buffer must stay resident — the substrate of the static
memory planner.  Three structural facts drive the analysis:

* **Lifetime classes.** View-aliased values share storage, so they
  share a lifetime: classes are the connected components of the alias
  graph's memory edges (``analysis.alias.AliasGraph.view_base``), and a
  class dies only when its *last* member's last use has executed.

* **Control flow.** A value defined in block ``B`` but used inside a
  nested ``prim::If``/``prim::Loop`` body must survive the *entire*
  control node (a loop body may re-execute), so nested uses project to
  the enclosing control node at ``B``'s level.  ``prim::FusionGroup`` /
  ``prim::ParallelMap`` bodies are kernel-internal: their values never
  reach the interpreter environment and are skipped entirely.

* **Loop back-edges.** A value produced inside a loop body and threaded
  to the next iteration through a carried slot is written fresh every
  iteration; the *previous* generation dies at the rebinding.  Such
  slots are marked *rotating* so the executor can recycle them
  per-iteration — the dominant reclamation on RNN-style workloads,
  where functionalization otherwise materializes one full output
  version per timestep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..analysis.alias import AliasGraph
from ..ir import types as T
from ..ir.graph import Block, Graph, Node, Value
from ..ops.schema import OpKind

__all__ = ["LifetimeClass", "Liveness", "compute_liveness"]

#: control ops whose bodies the interpreter executes node-by-node
_INTERPRETED_BLOCKS = ("prim::If", "prim::Loop")
#: ops whose outputs are freshly-allocated storages at runtime
_FRESH_KERNEL_OPS = ("prim::FusionGroup", "prim::ParallelMap")


def _is_tensor(value: Value) -> bool:
    return isinstance(value.type, (T.TensorType, T.AnyType))


@dataclass
class LifetimeClass:
    """One storage lifetime: an origin tensor plus its view aliases.

    ``interval`` is (def, last-use) in the home block's local node
    indices; ``plannable`` classes may be released at ``release_node``
    (before it for donation-style reuse, after it for control nodes);
    the rest carry a human-readable ``reason`` for the inspect view.
    """

    origin: Value
    members: List[Value] = field(default_factory=list)
    home: Optional[Block] = None
    interval: Tuple[int, int] = (0, 0)
    plannable: bool = False
    reason: str = ""
    release_node: Optional[Node] = None
    #: release accounting before the node (buffer donation) vs. after
    release_before: bool = False
    slot: Optional[int] = None

    @property
    def values(self) -> List[Value]:
        """Origin followed by every aliasing member."""
        return [self.origin] + self.members

    def __repr__(self) -> str:
        return (f"LifetimeClass(%{self.origin.name}, "
                f"+{len(self.members)} views, interval={self.interval}, "
                f"plannable={self.plannable})")


@dataclass
class Liveness:
    """Result of :func:`compute_liveness` over one graph."""

    graph: Graph
    classes: List[LifetimeClass] = field(default_factory=list)
    #: id(value) -> its lifetime class (interpreter-visible tensors only)
    class_of: Dict[int, LifetimeClass] = field(default_factory=dict)
    #: id(node) -> classes to release before executing it (donation)
    release_before: Dict[int, List[LifetimeClass]] = field(
        default_factory=dict)
    #: id(node) -> classes to release after it completes
    release_after: Dict[int, List[LifetimeClass]] = field(
        default_factory=dict)
    #: id(loop node) -> carried-slot indices safe to recycle per iteration
    rotating_slots: Dict[int, List[int]] = field(default_factory=dict)

    def interval_of(self, value: Value) -> Optional[Tuple[int, int]]:
        """The (def, last-use) interval of ``value``'s class, if known."""
        cls = self.class_of.get(id(value))
        return cls.interval if cls is not None else None


def _interpreted_values(graph: Graph) -> List[Value]:
    """Every tensor value the interpreter may bind: graph inputs, block
    params, and node outputs — excluding kernel-internal bodies."""
    out: List[Value] = []

    def visit(block: Block) -> None:
        for p in block.params:
            if _is_tensor(p):
                out.append(p)
        for node in block.nodes:
            for o in node.outputs:
                if _is_tensor(o):
                    out.append(o)
            if node.op in _INTERPRETED_BLOCKS:
                for b in node.blocks:
                    visit(b)

    for p in graph.inputs:
        if _is_tensor(p):
            out.append(p)
    visit(graph.block)
    return out


def _ancestor_at(block_or_node, home: Block) -> Optional[Node]:
    """The ancestor node of a use site whose owning block is ``home``."""
    node = block_or_node.owning_node if isinstance(block_or_node, Block) \
        else block_or_node
    while node is not None and node.owning_block is not home:
        owner_block = node.owning_block
        node = owner_block.owning_node if owner_block is not None else None
    return node


def _capture_uses(graph: Graph) -> Dict[int, List[Node]]:
    """id(value) -> horizontal loop nodes reading it as a body capture
    (those reads happen outside the use lists)."""
    from ..ir.graph import free_values
    out: Dict[int, List[Node]] = {}
    for node in graph.walk():
        if not node.attrs.get("horizontal") or not node.blocks:
            continue
        for v in free_values(node.blocks[0]):
            out.setdefault(id(v), []).append(node)
    return out


def compute_liveness(graph: Graph,
                     alias: Optional[AliasGraph] = None) -> Liveness:
    """Build lifetime classes, release schedules, and rotating slots."""
    alias = alias if alias is not None else AliasGraph(graph)
    live = Liveness(graph)
    values = _interpreted_values(graph)
    captures = _capture_uses(graph)

    # -- 1. classes: union by view root (memory-edge components) --------
    by_root: Dict[int, LifetimeClass] = {}
    for v in values:
        root = alias.view_root(v)
        cls = by_root.get(id(root))
        if cls is None:
            cls = LifetimeClass(origin=root)
            by_root[id(root)] = cls
            live.classes.append(cls)
        if v is not root:
            cls.members.append(v)
        live.class_of[id(v)] = cls

    # -- 2. judge plannability and compute intervals --------------------
    positions: Dict[int, Dict[int, int]] = {}
    for cls in live.classes:
        _judge_and_schedule(cls, live, captures, positions)

    # -- 3. release schedule indices ------------------------------------
    for cls in live.classes:
        if not cls.plannable or cls.release_node is None:
            continue
        table = live.release_before if cls.release_before \
            else live.release_after
        table.setdefault(id(cls.release_node), []).append(cls)

    # -- 4. rotating loop-carried slots ---------------------------------
    for node in graph.walk():
        if node.op != "prim::Loop" or node.attrs.get("horizontal"):
            continue
        slots = _rotating_slots(node, live)
        if slots:
            live.rotating_slots[id(node)] = slots
    return live


def _fresh_storage_origin(origin: Value) -> bool:
    """Does the origin's producer allocate a fresh buffer at runtime?"""
    if origin.is_param or origin.node is None:
        return False
    node = origin.node
    if node.op in _FRESH_KERNEL_OPS:
        return True  # fusion/map outputs are materialized copies
    if node.op == "prim::Loop" and node.attrs.get("horizontal"):
        # the horizontal executor wraps its final state into fresh
        # storages even on zero trips, unlike the interpreted loop
        # whose outputs pass carried-in storage through
        return True
    return node.kind is OpKind.PURE


def _block_positions(home: Block,
                     cache: Dict[int, Dict[int, int]]) -> Dict[int, int]:
    table = cache.get(id(home))
    if table is None:
        table = {id(n): i for i, n in enumerate(home.nodes)}
        cache[id(home)] = table
    return table


def _judge_and_schedule(cls: LifetimeClass, live: Liveness,
                        captures: Dict[int, List[Node]],
                        positions: Dict[int, Dict[int, int]]) -> None:
    """Decide whether a class is releasable and where it dies."""
    origin = cls.origin

    def fail(reason: str) -> None:
        cls.plannable = False
        cls.reason = reason

    if not _fresh_storage_origin(origin):
        if origin.is_param:
            return fail("graph input or block parameter")
        if origin.node is not None and origin.node.kind is OpKind.CONSTANT:
            return fail("constant (weights stay resident)")
        return fail("origin does not own fresh storage "
                    f"({origin.node.op if origin.node else '?'})")

    home = origin.defining_block()
    if home.owning_node is not None and \
            home.owning_node.op not in _INTERPRETED_BLOCKS:
        return fail("kernel-internal (fusion/parallel-map body)")

    pos_of = _block_positions(home, positions)
    def_pos = pos_of.get(id(origin.node))
    if def_pos is None:
        return fail("origin detached from its block")

    last_pos = def_pos
    last_node: Node = origin.node
    # may the class's bytes be donated to the last user's own outputs?
    # True only when the final use is a direct operand of a node that
    # reads its inputs exactly once (simple op or fused kernel).
    donation_ok = False
    for v in cls.values:
        for use in v.uses:
            user = use.user
            if isinstance(user, Block) and user is home:
                if home.owning_node is None:
                    return fail("escapes as a graph output")
                return fail("escapes through the home block's return")
            anchor = _ancestor_at(user, home)
            if anchor is None:
                return fail(f"use of %{v.name} outside the home block "
                            f"subtree")
            pos = pos_of[id(anchor)]
            direct = anchor is user
            # a horizontal loop reads carried-in state once (iteration 0;
            # later iterations thread kernel-produced arrays), so it can
            # accept donations like a fused kernel; an interpreted loop
            # cannot — a zero-trip run passes carried storage through to
            # its outputs, which a pre-release could not protect
            reads_once = direct and (
                not anchor.blocks or anchor.op in _FRESH_KERNEL_OPS or
                (anchor.op == "prim::Loop" and
                 bool(anchor.attrs.get("horizontal"))))
            if pos > last_pos:
                last_pos, last_node = pos, anchor
                donation_ok = reads_once
            elif pos == last_pos and not reads_once:
                donation_ok = False
        for cap_node in captures.get(id(v), ()):
            anchor = _ancestor_at(cap_node, home)
            if anchor is None:
                return fail("captured by a loop outside the home block")
            pos = pos_of[id(anchor)]
            if pos >= last_pos:
                last_pos, last_node = pos, anchor
                donation_ok = False

    cls.home = home
    cls.interval = (def_pos, last_pos)
    cls.plannable = True
    cls.release_node = last_node
    cls.release_before = donation_ok and last_node is not origin.node


def _rotating_slots(loop: Node, live: Liveness) -> List[int]:
    """Carried slots whose previous generation dies at each rebinding.

    Slot ``k`` rotates when the body's returned value for it is a
    freshly-allocated tensor defined inside the loop body whose aliases
    all stay inside the body — then the value bound to the param at
    iteration ``i`` is unreachable once iteration ``i+1`` begins.
    """
    body = loop.blocks[0]
    slots: List[int] = []
    for k, ret in enumerate(body.returns[1:]):
        if not _is_tensor(ret):
            continue
        cls = live.class_of.get(id(ret))
        if cls is None or not _fresh_storage_origin(cls.origin):
            continue
        if not any(b is body for b in cls.origin.defining_block()
                   .ancestors()):
            continue  # passthrough of an outer value
        # every alias must also live inside the body: an escape into an
        # outer scope or container would outlive the iteration
        inside = True
        for v in cls.values:
            if not any(b is body for b in v.defining_block().ancestors()):
                inside = False
                break
            for use in v.uses:
                user = use.user
                user_block = user if isinstance(user, Block) \
                    else user.owning_block
                if user_block is not None and \
                        not any(b is body for b in user_block.ancestors()):
                    inside = False
                    break
                if isinstance(user, Node) and \
                        user.op in ("prim::ListConstruct",
                                    "prim::TupleConstruct", "aten::append"):
                    inside = False
                    break
            if not inside:
                break
        if inside:
            slots.append(k)
    return slots
