"""Per-op vector-Jacobian product rules.

Importing this module attaches a ``vjp`` callable (and
``differentiable=True``) to every differentiable :class:`OpSchema` in
the registry.  Each rule has the signature::

    vjp(b: GradBuilder, node: Node, grads: [Value|None per output])
        -> [Value | None | list-of-Value per input]

and emits adjoint nodes through ``b`` into the current block.  ``None``
slots mean "no gradient flows to this input" (structural operands,
scalars, intentionally-zero derivatives like floor).  A *list* slot is
the adjoint of a ``prim::ListConstruct`` operand (cat/stack) and is
distributed element-wise by the sweep.

Conventions the rules rely on:

* every binary-elementwise adjoint funnels through
  ``grad::unbroadcast(g, operand)``, which both sums implicit
  broadcast axes away *and* casts to the operand's dtype — so mixed
  float64/float32 intermediates (possible when an integer scalar rides
  along, e.g. ``pow``'s exponent) can never leak the wrong dtype out;
* structural operands (dims, permutations, slice bounds) are reused as
  the *same IR Values* in the adjoint, or read via
  :func:`~repro.grad.builder.const_value` when the rule needs the
  Python value (inverse permutations, reduction-dim expansion);
* view/access reads differentiate to *window writes into zeros* and
  window writes differentiate to a *window read* plus a *window zero*
  — exactly the Access/Assign duality of paper §3.2, which is why
  functionalization makes reverse-mode a local rewrite.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import GradError
from ..ir import types as T
from ..ir.graph import Node, Value
from ..ops import registry
from .builder import GradBuilder, const_value

__all__ = ["register_vjp"]


def register_vjp(name: str):
    """Decorator: attach the rule to op ``name``'s schema and mark it
    differentiable.  Refuses to overwrite an explicit ``False``."""
    schema = registry.get(name)
    if schema.differentiable is False:
        raise ValueError(f"{name} is marked non-differentiable; refusing "
                         "to attach a VJP")

    def deco(fn):
        schema.vjp = fn
        schema.differentiable = True
        return fn
    return deco


def _unb(b: GradBuilder, g: Value, operand: Value) -> Optional[Value]:
    """Reduce ``g`` onto ``operand``'s shape/dtype, or ``None`` for
    non-tensor operands (host scalars carry no adjoints)."""
    if not operand.type.is_tensor:
        return None
    return b.e1("grad::unbroadcast", g, operand)


def _pad_none(grads: List, node: Node) -> List:
    """Right-pad a gradient list with ``None`` to the node's arity."""
    return grads + [None] * (len(node.inputs) - len(grads))


# ---------------------------------------------------------------------------
# identity / casting
# ---------------------------------------------------------------------------

@register_vjp("aten::clone")
def _vjp_clone(b, node, grads):
    """d clone = identity."""
    return [grads[0]]


@register_vjp("aten::alias")
def _vjp_alias(b, node, grads):
    """d alias = identity."""
    return [grads[0]]


@register_vjp("immut::alias")
def _vjp_immut_alias(b, node, grads):
    """d alias = identity."""
    return [grads[0]]


@register_vjp("aten::to")
def _vjp_to(b, node, grads):
    """Cast back to the source dtype (unbroadcast also casts)."""
    return _pad_none([_unb(b, grads[0], node.input(0))], node)


# ---------------------------------------------------------------------------
# elementwise arithmetic
# ---------------------------------------------------------------------------

@register_vjp("aten::add")
def _vjp_add(b, node, grads):
    """d(a+c) = (g, g), unbroadcast per operand."""
    g = grads[0]
    return [_unb(b, g, node.input(0)), _unb(b, g, node.input(1))]


@register_vjp("aten::sub")
def _vjp_sub(b, node, grads):
    """d(a-c) = (g, -g)."""
    g = grads[0]
    gc = None
    if node.input(1).type.is_tensor:
        gc = _unb(b, b.e1("aten::neg", g), node.input(1))
    return [_unb(b, g, node.input(0)), gc]


@register_vjp("aten::mul")
def _vjp_mul(b, node, grads):
    """d(a*c) = (g*c, g*a)."""
    g, a, c = grads[0], node.input(0), node.input(1)
    ga = _unb(b, b.e1("aten::mul", g, c), a) if a.type.is_tensor else None
    gc = _unb(b, b.e1("aten::mul", g, a), c) if c.type.is_tensor else None
    return [ga, gc]


@register_vjp("aten::div")
def _vjp_div(b, node, grads):
    """d(a/c) = (g/c, -g*a/c**2)."""
    g, a, c = grads[0], node.input(0), node.input(1)
    ga = _unb(b, b.e1("aten::div", g, c), a) if a.type.is_tensor else None
    gc = None
    if c.type.is_tensor:
        num = b.e1("aten::mul", g, a)
        den = b.e1("aten::mul", c, c)
        gc = _unb(b, b.e1("aten::neg", b.e1("aten::div", num, den)), c)
    return [ga, gc]


@register_vjp("aten::pow")
def _vjp_pow(b, node, grads):
    """d(a**p) = (g * p * a**(p-1), g * y * log(a))."""
    g, a, p = grads[0], node.input(0), node.input(1)
    if p.type.is_tensor:
        pm1 = b.e1("aten::sub", p, b.const(1.0))
    else:
        pm1 = b.e1("prim::sub", p, b.const(1))
    ga = _unb(b, b.e1("aten::mul", g,
                      b.e1("aten::mul", p, b.e1("aten::pow", a, pm1))), a)
    gp = None
    if p.type.is_tensor:
        gp = _unb(b, b.e1("aten::mul", g,
                          b.e1("aten::mul", node.output(0),
                               b.e1("aten::log", a))), p)
    return [ga, gp]


@register_vjp("aten::neg")
def _vjp_neg(b, node, grads):
    """d(-a) = -g."""
    return [b.e1("aten::neg", grads[0])]


@register_vjp("aten::abs")
def _vjp_abs(b, node, grads):
    """d|a| = sign(a) * g (the tie at 0 takes the +1 subgradient)."""
    g, a = grads[0], node.input(0)
    mask = b.e1("aten::ge", a, b.const(0.0))
    return [b.e1("aten::where", mask, g, b.e1("aten::neg", g))]


@register_vjp("aten::exp")
def _vjp_exp(b, node, grads):
    """d exp = g * y."""
    return [b.e1("aten::mul", grads[0], node.output(0))]


@register_vjp("aten::log")
def _vjp_log(b, node, grads):
    """d log = g / a."""
    return [b.e1("aten::div", grads[0], node.input(0))]


@register_vjp("aten::sqrt")
def _vjp_sqrt(b, node, grads):
    """d sqrt = g / (2*y)."""
    return [b.e1("aten::div", grads[0],
                 b.e1("aten::mul", node.output(0), b.const(2.0)))]


@register_vjp("aten::sigmoid")
def _vjp_sigmoid(b, node, grads):
    """d sigmoid = g * y * (1-y)."""
    y = node.output(0)
    return [b.e1("aten::mul", grads[0],
                 b.e1("aten::mul", y,
                      b.e1("aten::sub", b.const(1.0), y)))]


@register_vjp("aten::tanh")
def _vjp_tanh(b, node, grads):
    """d tanh = g * (1 - y**2)."""
    y = node.output(0)
    return [b.e1("aten::mul", grads[0],
                 b.e1("aten::sub", b.const(1.0),
                      b.e1("aten::mul", y, y)))]


@register_vjp("aten::relu")
def _vjp_relu(b, node, grads):
    """d relu = g where a > 0 (zero subgradient at the kink)."""
    g, a = grads[0], node.input(0)
    mask = b.e1("aten::gt", a, b.const(0.0))
    return [b.e1("aten::where", mask, g, b.zeros_like(g))]


@register_vjp("aten::floor")
def _vjp_floor(b, node, grads):
    """Zero a.e. — differentiable, with an identically-None gradient."""
    return [None]


@register_vjp("aten::ceil")
def _vjp_ceil(b, node, grads):
    """Zero a.e. — differentiable, with an identically-None gradient."""
    return [None]


@register_vjp("aten::clamp")
def _vjp_clamp(b, node, grads):
    """g inside the active band, zero where a bound clipped."""
    g, a = grads[0], node.input(0)
    cur = g
    if len(node.inputs) > 1 and const_value(node.input(1),
                                            "clamp min") is not None:
        cur = b.e1("aten::where", b.e1("aten::ge", a, node.input(1)),
                   cur, b.zeros_like(g))
    if len(node.inputs) > 2 and const_value(node.input(2),
                                            "clamp max") is not None:
        cur = b.e1("aten::where", b.e1("aten::le", a, node.input(2)),
                   cur, b.zeros_like(g))
    return _pad_none([cur], node)


@register_vjp("aten::maximum")
def _vjp_maximum(b, node, grads):
    """Route g to the winning operand (ties go to the first)."""
    g, a, c = grads[0], node.input(0), node.input(1)
    mask = b.e1("aten::ge", a, c)
    zero = b.zeros_like(g)
    ga = (_unb(b, b.e1("aten::where", mask, g, zero), a)
          if a.type.is_tensor else None)
    gc = (_unb(b, b.e1("aten::where", mask, zero, g), c)
          if c.type.is_tensor else None)
    return [ga, gc]


@register_vjp("aten::minimum")
def _vjp_minimum(b, node, grads):
    """Route g to the winning operand (ties go to the first)."""
    g, a, c = grads[0], node.input(0), node.input(1)
    mask = b.e1("aten::le", a, c)
    zero = b.zeros_like(g)
    ga = (_unb(b, b.e1("aten::where", mask, g, zero), a)
          if a.type.is_tensor else None)
    gc = (_unb(b, b.e1("aten::where", mask, zero, g), c)
          if c.type.is_tensor else None)
    return [ga, gc]


@register_vjp("aten::where")
def _vjp_where(b, node, grads):
    """Split g by the (non-differentiable) condition."""
    g = grads[0]
    cond, x, y = node.input(0), node.input(1), node.input(2)
    zero = b.zeros_like(g)
    gx = (_unb(b, b.e1("aten::where", cond, g, zero), x)
          if x.type.is_tensor else None)
    gy = (_unb(b, b.e1("aten::where", cond, zero, g), y)
          if y.type.is_tensor else None)
    return [None, gx, gy]


@register_vjp("aten::masked_fill")
def _vjp_masked_fill(b, node, grads):
    """Filled positions absorb no gradient."""
    g, t, mask = grads[0], node.input(0), node.input(1)
    return _pad_none(
        [_unb(b, b.e1("aten::where", mask, b.zeros_like(g), g), t), None],
        node)


# ---------------------------------------------------------------------------
# reductions
# ---------------------------------------------------------------------------

def _reduce_args(node: Node):
    """(dim, keepdim) of a reduction call, honouring bound defaults."""
    dim = (const_value(node.input(1), "reduction dim")
           if len(node.inputs) > 1 else None)
    keepdim = (bool(const_value(node.input(2), "reduction keepdim"))
               if len(node.inputs) > 2 else False)
    return dim, keepdim


def _expand_to(b: GradBuilder, g: Value, a: Value, dim, keepdim) -> Value:
    """Broadcast a reduced gradient back over the reduced extent."""
    if dim is not None and not keepdim:
        g = b.e1("aten::unsqueeze", g, b.const(int(dim)))
    return b.e1("aten::mul", b.e1("aten::ones_like", a), g)


@register_vjp("aten::sum")
def _vjp_sum(b, node, grads):
    """d sum spreads g uniformly over the reduced extent."""
    dim, keepdim = _reduce_args(node)
    return _pad_none([_expand_to(b, grads[0], node.input(0), dim, keepdim)],
                     node)


@register_vjp("aten::mean")
def _vjp_mean(b, node, grads):
    """Like sum, scaled by 1/count (count read as a float so float32
    graphs don't promote through int64 arithmetic)."""
    a = node.input(0)
    dim, keepdim = _reduce_args(node)
    if dim is None:
        count = b.e1("aten::numel", a)
    else:
        count = b.e1("aten::size", a, b.const(int(dim)))
    fcount = b.e1("aten::Float", count)
    g = b.e1("aten::div", grads[0], fcount)
    return _pad_none([_expand_to(b, g, a, dim, keepdim)], node)


def _vjp_minmax(b, node, grads):
    """Shared max/min rule: g lands on every argmax/argmin position
    (FD disagrees only at exact ties, which the grad-check harness
    detects as kinks and skips)."""
    g, a, y = grads[0], node.input(0), node.output(0)
    dim, keepdim = _reduce_args(node)
    if dim is not None and not keepdim:
        d = b.const(int(dim))
        y = b.e1("aten::unsqueeze", y, d)
        g = b.e1("aten::unsqueeze", g, d)
    mask = b.e1("aten::eq", a, y)
    return _pad_none([b.e1("aten::where", mask, b.e1("aten::mul",
                                                     b.e1("aten::ones_like",
                                                          a), g),
                           b.zeros_like(a))], node)


register_vjp("aten::max")(_vjp_minmax)
register_vjp("aten::min")(_vjp_minmax)


@register_vjp("aten::softmax")
def _vjp_softmax(b, node, grads):
    """d softmax = y * (g - sum(y*g, dim, keepdim))."""
    g, y, dim = grads[0], node.output(0), node.input(1)
    s = b.e1("aten::sum", b.e1("aten::mul", y, g), dim, b.const(True))
    return [b.e1("aten::mul", y, b.e1("aten::sub", g, s)), None]


@register_vjp("aten::log_softmax")
def _vjp_log_softmax(b, node, grads):
    """d log_softmax = g - exp(y) * sum(g, dim, keepdim)."""
    g, y, dim = grads[0], node.output(0), node.input(1)
    s = b.e1("aten::sum", g, dim, b.const(True))
    return [b.e1("aten::sub", g, b.e1("aten::mul", b.e1("aten::exp", y), s)),
            None]


# ---------------------------------------------------------------------------
# linear algebra
# ---------------------------------------------------------------------------

def _mT(b: GradBuilder, v: Value) -> Value:
    """Transpose the two trailing (matrix) dims."""
    return b.e1("aten::transpose", v, b.const(-2), b.const(-1))


def _vjp_matmul(b, node, grads):
    """d(a@c) = (g @ cT, aT @ g), unbroadcast over batch dims."""
    g, a, c = grads[0], node.input(0), node.input(1)
    return [_unb(b, b.e1("aten::matmul", g, _mT(b, c)), a),
            _unb(b, b.e1("aten::matmul", _mT(b, a), g), c)]


register_vjp("aten::matmul")(_vjp_matmul)
register_vjp("aten::bmm")(_vjp_matmul)


@register_vjp("aten::linear")
def _vjp_linear(b, node, grads):
    """d(x@wT+bias) = (g@w, gT@x summed over batch, sum-reduce g)."""
    g, x, w = grads[0], node.input(0), node.input(1)
    gx = _unb(b, b.e1("aten::matmul", g, w), x)
    gw = _unb(b, b.e1("aten::matmul", _mT(b, g), x), w)
    gbias = None
    if len(node.inputs) > 2 and node.input(2).type.is_tensor:
        gbias = _unb(b, g, node.input(2))
    return _pad_none([gx, gw, gbias][:len(node.inputs)], node)


# ---------------------------------------------------------------------------
# views, accesses, and assigns (the §3.2 duality)
# ---------------------------------------------------------------------------

def _vjp_window_read(assign_op: str):
    """Adjoint of a window *read* (select/slice/narrow, view or
    access): write g into a zeros_like of the base through the dual
    assign, reusing the original window operands."""
    def rule(b, node, grads):
        t = node.input(0)
        rest = list(node.inputs)[1:]
        gt = b.e1(assign_op, b.zeros_like(t), grads[0], *rest)
        return _pad_none([gt], node)
    return rule


for _read, _assign in [("aten::select", "immut::select_assign"),
                       ("immut::select", "immut::select_assign"),
                       ("aten::slice", "immut::slice_assign"),
                       ("immut::slice", "immut::slice_assign"),
                       ("aten::narrow", "immut::narrow_assign"),
                       ("immut::narrow", "immut::narrow_assign")]:
    register_vjp(_read)(_vjp_window_read(_assign))


def _vjp_select_assign(b, node, grads):
    """select_assign(base, src, dim, i): zero the written window in g
    for the base; read the window of g for the src."""
    g, src = grads[0], node.input(1)
    rest = list(node.inputs)[2:]
    gbase = b.e1("immut::select_assign", g, b.const(0.0), *rest)
    gsrc = (_unb(b, b.e1("immut::select", g, *rest), src)
            if src.type.is_tensor else None)
    return _pad_none([gbase, gsrc], node)


def _vjp_slice_assign(b, node, grads):
    """slice_assign analogue of :func:`_vjp_select_assign`."""
    g, src = grads[0], node.input(1)
    rest = list(node.inputs)[2:]
    gbase = b.e1("immut::slice_assign", g, b.const(0.0), *rest)
    gsrc = (_unb(b, b.e1("immut::slice", g, *rest), src)
            if src.type.is_tensor else None)
    return _pad_none([gbase, gsrc], node)


def _vjp_narrow_assign(b, node, grads):
    """narrow_assign analogue of :func:`_vjp_select_assign`."""
    g, src = grads[0], node.input(1)
    rest = list(node.inputs)[2:]
    gbase = b.e1("immut::narrow_assign", g, b.const(0.0), *rest)
    gsrc = (_unb(b, b.e1("immut::narrow", g, *rest), src)
            if src.type.is_tensor else None)
    return _pad_none([gbase, gsrc], node)


register_vjp("immut::select_assign")(_vjp_select_assign)
register_vjp("immut::slice_assign")(_vjp_slice_assign)
register_vjp("immut::narrow_assign")(_vjp_narrow_assign)


@register_vjp("immut::assign")
def _vjp_assign(b, node, grads):
    """A whole-tensor overwrite: the base contributes nothing."""
    src = node.input(1)
    return [None,
            _unb(b, grads[0], src) if src.type.is_tensor else None]


def _vjp_reshape_family(b, node, grads):
    """Adjoint of any metadata-only reshape: reshape g back to the
    input's shape (grad::reshape_like carries the shape statically)."""
    return _pad_none([b.e1("grad::reshape_like", grads[0], node.input(0))],
                     node)


for _n in ["aten::reshape", "aten::view", "aten::squeeze",
           "aten::unsqueeze", "aten::flatten", "immut::reshape",
           "immut::squeeze", "immut::unsqueeze", "immut::flatten"]:
    register_vjp(_n)(_vjp_reshape_family)


def _vjp_reshape_family_assign(b, node, grads):
    """A reshaped whole-tensor overwrite: base gets nothing, src gets g
    reshaped back to its own shape."""
    src = node.input(1)
    gsrc = (b.e1("grad::reshape_like", grads[0], src)
            if src.type.is_tensor else None)
    return _pad_none([None, gsrc], node)


for _n in ["immut::reshape_assign", "immut::squeeze_assign",
           "immut::unsqueeze_assign", "immut::flatten_assign"]:
    register_vjp(_n)(_vjp_reshape_family_assign)


def _vjp_permute(b, node, grads):
    """Permute g by the inverse permutation (a fresh constant)."""
    dims = [int(d) for d in const_value(node.input(1), "permutation")]
    inv = sorted(range(len(dims)), key=lambda i: dims[i] % len(dims))
    return [b.e1("aten::permute", grads[0], b.const(inv)), None]


register_vjp("aten::permute")(_vjp_permute)
register_vjp("immut::permute")(_vjp_permute)


def _vjp_transpose(b, node, grads):
    """Transposing back undoes the swap — reuse the dim operands."""
    return [b.e1("aten::transpose", grads[0], node.input(1), node.input(2)),
            None, None]


register_vjp("aten::transpose")(_vjp_transpose)
register_vjp("immut::transpose")(_vjp_transpose)


@register_vjp("immut::permute_assign")
def _vjp_permute_assign(b, node, grads):
    """permute_assign writes src.transpose(argsort(dims)) over the
    base, so g_src = g permuted by dims (the forward's own operand)."""
    return [None, b.e1("aten::permute", grads[0], node.input(2)), None]


@register_vjp("immut::transpose_assign")
def _vjp_transpose_assign(b, node, grads):
    """Swap the same two dims of g for the src."""
    return [None, b.e1("aten::transpose", grads[0], node.input(2),
                       node.input(3)), None, None]


def _vjp_expand(b, node, grads):
    """Sum the broadcast axes back down."""
    return _pad_none([_unb(b, grads[0], node.input(0))], node)


register_vjp("aten::expand")(_vjp_expand)
register_vjp("immut::expand")(_vjp_expand)


# ---------------------------------------------------------------------------
# concatenation / stacking
# ---------------------------------------------------------------------------

@register_vjp("aten::cat")
def _vjp_cat(b, node, grads):
    """Split g back into per-element narrows along the cat dim, with
    runtime ``aten::size`` offsets (symbolic-shape safe)."""
    g, lst = grads[0], node.input(0)
    d = node.input(1) if len(node.inputs) > 1 else b.const(0)
    src = lst.node
    if src is None or src.op != "prim::ListConstruct":
        raise GradError("aten::cat adjoint needs a prim::ListConstruct "
                        "operand")
    start: Value = b.const(0)
    parts: List[Value] = []
    for elem in src.inputs:
        size = b.e1("aten::size", elem, d)
        parts.append(_unb(b, b.e1("aten::narrow", g, d, start, size), elem))
        start = b.e1("prim::add", start, size)
    return _pad_none([parts], node)


@register_vjp("aten::stack")
def _vjp_stack(b, node, grads):
    """Select each stacked slice of g back out."""
    g, lst = grads[0], node.input(0)
    d = node.input(1) if len(node.inputs) > 1 else b.const(0)
    src = lst.node
    if src is None or src.op != "prim::ListConstruct":
        raise GradError("aten::stack adjoint needs a prim::ListConstruct "
                        "operand")
    parts = [_unb(b, b.e1("aten::select", g, d, b.const(k)), elem)
             for k, elem in enumerate(src.inputs)]
    return _pad_none([parts], node)


# ---------------------------------------------------------------------------
# creation ops: constants of the program, zero gradient everywhere
# ---------------------------------------------------------------------------

def _vjp_no_grad(b, node, grads):
    """Creation ops depend on no tensor input — all-None adjoints."""
    return [None] * len(node.inputs)


for _n in ["aten::zeros", "aten::ones", "aten::full", "aten::arange",
           "aten::zeros_like", "aten::ones_like", "aten::full_like"]:
    register_vjp(_n)(_vjp_no_grad)
