"""Numerical grad-check harness: the correctness wall in front of
:func:`repro.grad.grad`.

Central finite differences validate analytic gradients element by
element::

    (f(x + eps*e_k) - f(x - eps*e_k)) / (2*eps)   vs   g[k]

with two defenses real programs need:

* **float64 evaluation** — models run inside
  :func:`repro.runtime.creation.promoting_f32_to` so scratch buffers
  allocated at the float32 factory default don't truncate the ~1e-9
  accuracy central differences reach at float64;
* **kink detection** — the one-sided forward and backward differences
  are computed alongside the central one; where they disagree beyond
  ``kink_tol`` the loss is locally non-smooth at working precision
  (relu/abs/max ties, or a data-dependent branch/loop flipped under
  perturbation) and the element is *skipped*, not failed — FD is
  meaningless there and the analytic subgradient is still valid.

Element sampling is seeded and deterministic; tolerances are per-dtype.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

import repro.runtime as rt
from ..runtime.creation import promoting_f32_to
from ..runtime.dtype import float64

__all__ = ["GradCheckConfig", "GradCheckResult", "gradcheck",
           "check_workload_grad"]

#: per-dtype (eps, rtol, atol) defaults: float64 supports tight
#: tolerances; float32 FD noise floors out around 1e-3 relative
_DTYPE_TOLS = {
    np.dtype(np.float64): (1e-6, 1e-5, 1e-8),
    np.dtype(np.float32): (1e-3, 1e-2, 1e-3),
}


@dataclass(frozen=True)
class GradCheckConfig:
    """Knobs of one grad-check run."""

    #: elements sampled per input tensor (all elements if it has fewer)
    samples_per_input: int = 8
    #: RNG seed for element sampling (deterministic across runs)
    seed: int = 0
    #: relative disagreement between the one-sided differences beyond
    #: which an element counts as a kink and is skipped
    kink_tol: float = 1e-2
    #: override the per-dtype (eps, rtol, atol) table
    eps: Optional[float] = None
    rtol: Optional[float] = None
    atol: Optional[float] = None

    def tols(self, dtype: np.dtype):
        """(eps, rtol, atol) for ``dtype``, with overrides applied."""
        eps, rtol, atol = _DTYPE_TOLS.get(np.dtype(dtype),
                                          _DTYPE_TOLS[np.dtype(np.float32)])
        return (self.eps if self.eps is not None else eps,
                self.rtol if self.rtol is not None else rtol,
                self.atol if self.atol is not None else atol)


@dataclass
class GradCheckResult:
    """Outcome of a grad-check: pass/fail plus the evidence."""

    ok: bool
    #: worst |analytic - central| / max(|central|, |analytic|, 1)
    #: over the checked (non-skipped) elements
    max_rel_err: float
    #: elements actually compared against FD
    checked: int
    #: elements skipped as kinks (one-sided differences disagreed)
    skipped: int
    #: human-readable description of each failing element
    failures: List[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.ok


def gradcheck(loss_fn: Callable[..., float], args: Sequence,
              grads: Sequence[rt.Tensor],
              wrt: Optional[Sequence[int]] = None,
              config: Optional[GradCheckConfig] = None) -> GradCheckResult:
    """Compare analytic ``grads`` against central finite differences.

    ``loss_fn(*args) -> float`` must be a pure function of ``args``
    (it is re-evaluated ~2x per sampled element and must not mutate
    its inputs).  ``wrt`` lists the arg indices the entries of
    ``grads`` correspond to (default: every :class:`~repro.runtime.
    Tensor` argument, in order).
    """
    config = config or GradCheckConfig()
    args = list(args)
    if wrt is None:
        wrt = [i for i, a in enumerate(args) if isinstance(a, rt.Tensor)]
    if len(wrt) != len(grads):
        raise ValueError(f"gradcheck: {len(grads)} gradients for "
                         f"{len(wrt)} wrt arguments")
    rng = np.random.default_rng(config.seed)
    f0 = float(loss_fn(*args))

    max_rel = 0.0
    checked = skipped = 0
    failures: List[str] = []
    for ai, g in zip(wrt, grads):
        base = args[ai].numpy()
        eps, rtol, atol = config.tols(base.dtype)
        analytic = g.numpy().reshape(-1)
        flat = base.reshape(-1)
        n = flat.size
        idxs = (np.arange(n) if n <= config.samples_per_input
                else rng.choice(n, size=config.samples_per_input,
                                replace=False))
        for k in idxs:
            k = int(k)
            vals = []
            for delta in (eps, -eps):
                mod = base.copy().reshape(-1)
                mod[k] += delta
                probe = list(args)
                probe[ai] = rt.from_numpy(mod.reshape(base.shape))
                vals.append(float(loss_fn(*probe)))
            fp, fm = vals
            central = (fp - fm) / (2 * eps)
            fwd = (fp - f0) / eps
            bwd = (f0 - fm) / eps
            scale = max(abs(central), abs(fwd), abs(bwd), 1.0)
            if abs(fwd - bwd) > config.kink_tol * scale:
                skipped += 1
                continue  # non-smooth here: FD is meaningless
            a = float(analytic[k])
            checked += 1
            rel = abs(a - central) / max(abs(central), abs(a), 1.0)
            max_rel = max(max_rel, rel)
            if abs(a - central) > atol + rtol * abs(central):
                failures.append(
                    f"arg {ai} elem {k}: analytic {a:.8g} vs central "
                    f"FD {central:.8g} (rel {rel:.3g}, eps {eps:g})")
    return GradCheckResult(ok=not failures, max_rel_err=max_rel,
                           checked=checked, skipped=skipped,
                           failures=failures)


def _to64(a):
    if isinstance(a, rt.Tensor) and a.numpy().dtype == np.float32:
        return rt.from_numpy(a.numpy().astype(np.float64))
    return a


def check_workload_grad(workload: str, batch_size: int = 1,
                        seq_len: int = 8, seed: int = 0,
                        samples_per_input: int = 8) -> GradCheckResult:
    """Grad-check one registered workload end to end.

    Builds the backward graph with :func:`repro.grad.build_backward`,
    interprets it at float64 (inputs upcast, factory defaults promoted
    via :func:`promoting_f32_to`), and compares against central FD of
    the model's sum-of-outputs loss.
    """
    from ..backend.interpreter import run_graph
    from ..models import get_workload
    from . import build_backward

    wl = get_workload(workload)
    args = tuple(_to64(a) for a in
                 wl.make_inputs(batch_size=batch_size, seq_len=seq_len,
                                seed=seed))

    def loss(*a) -> float:
        cloned = [x.clone() if isinstance(x, rt.Tensor) else x for x in a]
        with promoting_f32_to(float64):
            outs = wl.model_fn(*cloned)
        outs = outs if isinstance(outs, (tuple, list)) else (outs,)
        return sum(float(o.sum()) for o in outs if isinstance(o, rt.Tensor))

    _, bwd = build_backward(wl.model_fn)
    with promoting_f32_to(float64):
        grads = run_graph(bwd, args)
    grads = grads if isinstance(grads, (tuple, list)) else (grads,)
    return gradcheck(loss, args, list(grads),
                     config=GradCheckConfig(
                         samples_per_input=samples_per_input, seed=seed))
