"""Reverse-mode adjoint construction over functional TensorSSA graphs.

The gradient transform (:func:`grad`) is a *graph-to-graph* pass: it
clones the forward graph, seeds the loss outputs with ``ones_like``
adjoints, sweeps the clone in reverse program order dispatching each
node to the VJP rule on its :class:`~repro.ops.schema.OpSchema`, and
returns a plain TensorSSA graph whose outputs are the input gradients.
Because functionalization (paper §3-4) already removed every mutation,
the sweep needs no aliasing analysis and no tape: each SSA value has
exactly one defining node, so the adjoint of a value is just the sum of
the VJP contributions of its uses.

Control flow differentiates structurally:

* ``prim::If`` — both branches are re-cloned into a new adjoint ``If``
  on the same condition; each adjoint branch seeds its forward returns
  with the demanded output adjoints, back-propagates, and returns one
  adjoint per *captured tensor* (the union over both branches, zeros
  where a branch does not touch a capture).
* ``prim::Loop`` — a tape-free scan: a counting loop measures the trip
  count ``N`` (``while`` loops carry ``max_trip`` = 2**31-1, so it
  cannot be read off the graph), a replay loop re-runs the body
  stashing each iteration's *entering* carried state into
  ``grad::stash_init`` buffers, and a reverse loop runs ``N``
  iterations backwards, re-cloning the body at iteration ``j = N-1-r``
  from the stashed state and sweeping it.  Carried adjoints thread
  through the reverse loop; captured-tensor adjoints accumulate in
  extra carried slots.

Recompute-over-store is a deliberate trade: the forward graph is pure,
so re-running regions is always legal, and the existing pass pipeline
(CSE, fusion, parallelization) then deduplicates and fuses the
recomputation like any other code.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import GradError
from ..ir import types as T
from ..ir.clone import clone_graph, clone_region
from ..ir.graph import Block, Graph, Node, Value
from ..ops import registry
from ..ops.schema import OpKind

__all__ = ["GradBuilder", "grad", "const_value"]

#: ops the reverse sweep handles structurally (no OpSchema VJP)
_STRUCTURAL = {"prim::Constant", "prim::ListConstruct",
               "prim::TupleConstruct", "prim::TupleUnpack", "prim::If",
               "prim::Loop", "tssa::update"}

#: graph shapes grad() refuses outright — differentiation runs on the
#: *functionalized, unfused* TensorSSA form only
_UNSUPPORTED = {"prim::FusionGroup", "prim::ParallelMap"}


def const_value(v: Value, what: str):
    """The compile-time Python value behind ``v``.

    VJP rules use this to read structural operands (reduction dims,
    permutations) that must be static for the adjoint to be
    constructible; a non-constant operand raises :class:`GradError`.
    """
    node = v.node
    if node is not None and node.op == "prim::Constant":
        return node.attrs["value"]
    if node is not None and node.op == "prim::ListConstruct":
        return [const_value(x, what) for x in node.inputs]
    raise GradError(f"{what} must be a compile-time constant to "
                    f"differentiate, got runtime value %{v.name}")


class GradBuilder:
    """Node-emission helper threaded through every VJP rule.

    Keeps a *current block* (adjoint emission retargets it into If
    branches and Loop bodies) and types emitted nodes from their
    schema's ``result_types`` templates, mirroring the frontend
    lowerer.
    """

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        self.block: Block = graph.block

    # -- emission -------------------------------------------------------

    def const(self, value, name: str = "c") -> Value:
        """Emit a ``prim::Constant`` in the current block."""
        node = self.graph.constant(value, name=name)
        self.block.append(node)
        return node.output()

    def emit(self, op: str, inputs: Sequence[Value],
             name: str = "g") -> Node:
        """Emit ``op`` over ``inputs`` in the current block, typing the
        outputs from the schema's result templates."""
        schema = registry.get(op)
        types_ = [self._result_type(tpl, inputs)
                  for tpl in schema.result_types[:max(schema.num_outputs, 1)]]
        node = self.graph.create(op, inputs,
                                 output_names=[name] * len(types_),
                                 output_types=types_)
        self.block.append(node)
        return node

    def e1(self, op: str, *inputs: Value, name: str = "g") -> Value:
        """Emit a single-output op; returns the output Value."""
        return self.emit(op, list(inputs), name=name).output()

    def zeros_like(self, v: Value) -> Value:
        """A fresh zero adjoint shaped like ``v``."""
        return self.e1("aten::zeros_like", v, name="gz")

    def ones_like(self, v: Value) -> Value:
        """The seed adjoint for a loss output."""
        return self.e1("aten::ones_like", v, name="seed")

    @staticmethod
    def _result_type(template: str, operands: Sequence[Value]) -> T.Type:
        if template == "Tensor":
            return T.TensorType()
        if template == "int":
            return T.IntType()
        if template == "float":
            return T.FloatType()
        if template == "bool":
            return T.BoolType()
        if template == "Scalar":
            cands = [v for v in operands if v.type.is_scalar] or operands
            if any(isinstance(v.type, T.FloatType) for v in cands):
                return T.FloatType()
            if cands and all(isinstance(v.type, T.BoolType) for v in cands):
                return T.BoolType()
            return T.IntType()
        if template == "List":
            return T.ListType(operands[0].type if operands else T.AnyType())
        if template == "Tuple":
            return T.TupleType([v.type for v in operands])
        return T.AnyType()

    # -- adjoint bookkeeping -------------------------------------------

    def accumulate(self, adjoints: Dict[int, Value], value: Value,
                   g: Optional[Value]) -> None:
        """Add contribution ``g`` to ``value``'s adjoint (sum of uses).

        Non-tensor values never carry adjoints (host scalars are
        treated as non-differentiable wiring), and ``None``
        contributions are dropped — both make VJP rules shorter.
        """
        if g is None or not value.type.is_tensor:
            return
        prev = adjoints.get(id(value))
        adjoints[id(value)] = (g if prev is None
                               else self.e1("aten::add", prev, g, name="gacc"))


# ---------------------------------------------------------------------------
# free-value analysis
# ---------------------------------------------------------------------------

def _deep_free_values(block: Block) -> List[Value]:
    """Values ``block`` (including nested blocks) references but does
    not define, in first-use order.

    :func:`repro.ir.graph.free_values` is shallow by design (nested
    captures stay free *inside* the nested block); the adjoint of a
    control-flow region needs the transitive capture set because every
    captured tensor is a differentiation path out of the region.
    """
    defined = set()

    def collect(b: Block) -> None:
        for p in b.params:
            defined.add(id(p))
        for n in b.nodes:
            for o in n.outputs:
                defined.add(id(o))
            for sb in n.blocks:
                collect(sb)

    collect(block)
    free: List[Value] = []
    seen = set()

    def visit(v: Value) -> None:
        if id(v) not in defined and id(v) not in seen:
            seen.add(id(v))
            free.append(v)

    def scan(b: Block) -> None:
        for n in b.nodes:
            for v in n.inputs:
                visit(v)
            for sb in n.blocks:
                scan(sb)
        for r in b.returns:
            visit(r)

    scan(block)
    return free


def _free_tensors(blocks: Sequence[Block]) -> List[Value]:
    """Ordered union of the deep free *tensor* values of ``blocks``."""
    out: List[Value] = []
    seen = set()
    for b in blocks:
        for v in _deep_free_values(b):
            if v.type.is_tensor and id(v) not in seen:
                seen.add(id(v))
                out.append(v)
    return out


# ---------------------------------------------------------------------------
# the reverse sweep
# ---------------------------------------------------------------------------

def _backprop(builder: GradBuilder, nodes: Sequence[Node],
              adjoints: Dict[int, Value]) -> None:
    """Sweep ``nodes`` in reverse, dispatching VJPs and accumulating
    input adjoints into ``adjoints`` (keyed by ``id(Value)``)."""
    for node in reversed(list(nodes)):
        op = node.op
        if op in _UNSUPPORTED:
            raise GradError(f"cannot differentiate through {op}: grad() "
                            "must run before fusion/parallelization")
        if op == "prim::If":
            _if_adjoint(builder, node, adjoints)
            continue
        if op == "prim::Loop":
            _loop_adjoint(builder, node, adjoints)
            continue
        if op == "prim::TupleUnpack":
            _tuple_unpack_adjoint(builder, node, adjoints)
            continue
        if op in _STRUCTURAL:
            continue
        grads = [adjoints.get(id(o)) for o in node.outputs]
        if not any(g is not None for g in grads):
            continue  # nothing downstream demanded this node
        schema = node.schema
        if schema.differentiable is False:
            raise GradError(
                f"op {op} is not differentiable, but an adjoint of "
                f"%{node.output(0).name} is demanded by the loss")
        if schema.vjp is None:
            raise GradError(
                f"op {op} has no VJP registered "
                "(OpSchema.differentiable is unclassified)")
        in_grads = schema.vjp(builder, node, grads)
        if len(in_grads) != len(node.inputs):
            raise GradError(f"VJP for {op} returned {len(in_grads)} "
                            f"gradients for {len(node.inputs)} inputs")
        for v, g in zip(node.inputs, in_grads):
            if g is None:
                continue
            if isinstance(g, (list, tuple)):
                # a list-slot adjoint (cat/stack): distribute onto the
                # elements of the feeding ListConstruct
                src = v.node
                if src is None or src.op != "prim::ListConstruct":
                    raise GradError(
                        f"list adjoint of {op} needs a prim::ListConstruct "
                        f"operand, got %{v.name}")
                for elem, ge in zip(src.inputs, g):
                    builder.accumulate(adjoints, elem, ge)
                continue
            builder.accumulate(adjoints, v, g)


def _tuple_unpack_adjoint(builder: GradBuilder, node: Node,
                          adjoints: Dict[int, Value]) -> None:
    """Route unpack-output adjoints back onto the packed elements."""
    src = node.input(0).node
    if src is None or src.op != "prim::TupleConstruct":
        raise GradError("cannot differentiate prim::TupleUnpack of an "
                        "opaque tuple value")
    for elem, out in zip(src.inputs, node.outputs):
        builder.accumulate(adjoints, elem, adjoints.get(id(out)))


# ---------------------------------------------------------------------------
# prim::If adjoint
# ---------------------------------------------------------------------------

def _if_adjoint(builder: GradBuilder, node: Node,
                adjoints: Dict[int, Value]) -> None:
    """Differentiate an ``If`` by re-cloning each branch inside a new
    adjoint ``If`` on the same condition.

    Gradient flows out of a branch only through its *captured* tensors
    (branch blocks have no params), so the adjoint ``If`` returns one
    adjoint per captured tensor — the ordered union over both branches,
    ``zeros_like`` where a branch does not reference a capture.
    """
    grads = [adjoints.get(id(o)) for o in node.outputs]
    if not any(g is not None for g in grads):
        return
    captures = _free_tensors(node.blocks)
    gnode = builder.graph.create("prim::If", [node.input(0)])
    for branch in node.blocks:
        gb = gnode.add_block()
        saved = builder.block
        builder.block = gb
        try:
            vmap = {id(v): v for v in _deep_free_values(branch)}
            rets, cloned = clone_region(branch, gb, builder.graph, vmap)
            local: Dict[int, Value] = {}
            for r, g in zip(rets, grads):
                builder.accumulate(local, r, g)
            _backprop(builder, cloned, local)
            for f in captures:
                gf = local.get(id(f))
                gb.add_return(gf if gf is not None
                              else builder.zeros_like(f))
        finally:
            builder.block = saved
    outs = [gnode.add_output(f"gif_{f.name.split('.')[0]}", T.TensorType())
            for f in captures]
    builder.block.append(gnode)
    for f, o in zip(captures, outs):
        builder.accumulate(adjoints, f, o)


# ---------------------------------------------------------------------------
# prim::Loop adjoint (tape-free scan)
# ---------------------------------------------------------------------------

def _clone_body(body: Block, dst: Block, graph: Graph, trip: Value,
                carried: Sequence[Value]) -> Tuple[List[Value], List[Node]]:
    """Re-clone a loop body into ``dst`` with the trip variable and
    carried params substituted; outer captures map to themselves."""
    vmap = {id(v): v for v in _deep_free_values(body)}
    vmap[id(body.params[0])] = trip
    for p, v in zip(body.params[1:], carried):
        vmap[id(p)] = v
    return clone_region(body, dst, graph, vmap)


def _unstash(builder: GradBuilder, stash: Value, j: Value,
             typ: T.Type) -> Value:
    """Read iteration ``j``'s stashed row back as its original type."""
    row = builder.e1("immut::select", stash, builder.const(0), j,
                     name="row")
    if typ.is_tensor:
        return row
    if isinstance(typ, T.IntType):
        return builder.e1("aten::Int", row, name="row_i")
    if isinstance(typ, T.FloatType):
        return builder.e1("aten::Float", row, name="row_f")
    if isinstance(typ, T.BoolType):
        return builder.e1("aten::Bool", row, name="row_b")
    raise GradError(f"loop carries a value of type {typ} that the "
                    "scan adjoint cannot stash")


def _loop_adjoint(builder: GradBuilder, node: Node,
                  adjoints: Dict[int, Value]) -> None:
    """Differentiate a ``Loop`` with the three-loop scan construction.

    1. *Count*: re-run the loop with an extra integer carried slot to
       measure the realized trip count ``N`` (``while`` loops advertise
       ``max_trip`` = 2**31-1, so ``N`` only exists at runtime).
    2. *Replay*: re-run ``N`` iterations stashing each iteration's
       entering carried state into ``grad::stash_init`` buffers
       (row ``i`` = state entering iteration ``i``; scalar carried
       values stash as 0-d rows).
    3. *Reverse*: run ``N`` iterations with ``j = N-1-r``, re-clone the
       body at the unstashed state for iteration ``j``, sweep it, and
       thread carried-output adjoints to carried-input adjoints.
       Captured-tensor adjoints accumulate in extra carried slots.

    A zero-trip loop degenerates correctly: the reverse loop runs zero
    iterations and passes the output adjoints straight through to the
    carried inits.
    """
    grads = [adjoints.get(id(o)) for o in node.outputs]
    if not any(g is not None for g in grads):
        return
    graph, body = builder.graph, node.block(0)
    carried_inits = [node.input(2 + k) for k in range(len(node.outputs))]
    n_car = len(carried_inits)
    for p in body.params[1:]:
        if not (p.type.is_tensor or p.type.is_scalar):
            raise GradError(f"loop carries non-differentiable value "
                            f"%{p.name} of type {p.type}")
    captures = _free_tensors([body])

    # -- 1. counting loop ----------------------------------------------
    zero, one = builder.const(0), builder.const(1)
    true_c = builder.const(True)
    cnode = graph.create("prim::Loop",
                         [node.input(0), node.input(1)]
                         + carried_inits + [zero])
    cb = cnode.add_block()
    ci = cb.add_param("i", T.IntType())
    ccar = [cb.add_param(p.name.split(".")[0], p.type)
            for p in body.params[1:]]
    ccnt = cb.add_param("cnt", T.IntType())
    saved = builder.block
    builder.block = cb
    try:
        rets, _ = _clone_body(body, cb, graph, ci, ccar)
        cinc = builder.e1("prim::add", ccnt, one, name="cnt")
        cb.add_return(rets[0])
        for r in rets[1:]:
            cb.add_return(r)
        cb.add_return(cinc)
    finally:
        builder.block = saved
    for p in body.params[1:]:
        cnode.add_output(p.name.split(".")[0], p.type)
    trip_n = cnode.add_output("trip_n", T.IntType())
    builder.block.append(cnode)

    # -- 2. replay loop with stashes -----------------------------------
    stash_inits = [builder.e1("grad::stash_init", init, trip_n, name="stash")
                   for init in carried_inits]
    rnode = graph.create("prim::Loop",
                         [trip_n, true_c] + carried_inits + stash_inits)
    rb = rnode.add_block()
    ri = rb.add_param("i", T.IntType())
    rcar = [rb.add_param(p.name.split(".")[0], p.type)
            for p in body.params[1:]]
    rstash = [rb.add_param("stash", T.TensorType()) for _ in carried_inits]
    builder.block = rb
    try:
        new_stash = [builder.e1("immut::select_assign", st, cv, zero, ri,
                                name="stash")
                     for st, cv in zip(rstash, rcar)]
        rets, _ = _clone_body(body, rb, graph, ri, rcar)
        rb.add_return(true_c)
        for r in rets[1:]:
            rb.add_return(r)
        for st in new_stash:
            rb.add_return(st)
    finally:
        builder.block = saved
    for p in body.params[1:]:
        rnode.add_output(p.name.split(".")[0], p.type)
    stash_outs = [rnode.add_output("stash", T.TensorType())
                  for _ in carried_inits]
    builder.block.append(rnode)

    # -- 3. reverse loop -----------------------------------------------
    tensor_idx = [k for k in range(n_car) if carried_inits[k].type.is_tensor]
    g_inits = [grads[k] if grads[k] is not None
               else builder.zeros_like(node.output(k))
               for k in tensor_idx]
    gf_inits = [builder.zeros_like(f) for f in captures]
    vnode = graph.create("prim::Loop",
                         [trip_n, true_c] + g_inits + gf_inits)
    vb = vnode.add_block()
    vi = vb.add_param("r", T.IntType())
    vg_car = [vb.add_param("g_c", T.TensorType()) for _ in tensor_idx]
    vg_free = [vb.add_param("g_f", T.TensorType()) for _ in captures]
    builder.block = vb
    try:
        n_m1 = builder.e1("prim::sub", trip_n, one, name="n1")
        j = builder.e1("prim::sub", n_m1, vi, name="j")
        entering = [_unstash(builder, stash_outs[k], j,
                             body.params[1 + k].type)
                    for k in range(n_car)]
        rets, cloned = _clone_body(body, vb, graph, j, entering)
        local: Dict[int, Value] = {}
        for pos, k in enumerate(tensor_idx):
            builder.accumulate(local, rets[1 + k], vg_car[pos])
        _backprop(builder, cloned, local)
        vb.add_return(true_c)
        for pos, k in enumerate(tensor_idx):
            g_ent = local.get(id(entering[k]))
            vb.add_return(g_ent if g_ent is not None
                          else builder.zeros_like(entering[k]))
        for acc, f in zip(vg_free, captures):
            gf = local.get(id(f))
            vb.add_return(acc if gf is None
                          else builder.e1("aten::add", acc, gf, name="g_f"))
    finally:
        builder.block = saved
    g_car_outs = [vnode.add_output("g_init", T.TensorType())
                  for _ in tensor_idx]
    g_free_outs = [vnode.add_output("g_cap", T.TensorType())
                   for _ in captures]
    builder.block.append(vnode)

    for pos, k in enumerate(tensor_idx):
        builder.accumulate(adjoints, carried_inits[k], g_car_outs[pos])
    for f, o in zip(captures, g_free_outs):
        builder.accumulate(adjoints, f, o)


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------

def _check_supported(graph: Graph) -> None:
    for node in graph.walk():
        if node.op in _UNSUPPORTED:
            raise GradError(f"cannot differentiate through {node.op}: "
                            "run grad() on the pre-fusion TensorSSA form")
        if node.kind is OpKind.MUTATING:
            raise GradError(
                f"graph still contains mutation {node.op}: grad() "
                "requires the functionalized (TensorSSA) form; "
                "residual mutations mean functionalization was skipped")


def grad(graph: Graph, wrt: Optional[Sequence[int]] = None,
         out: Optional[int] = None) -> Graph:
    """Build the reverse-mode gradient graph of ``graph``.

    The result is a fresh graph with the *same input signature* whose
    outputs are ``d(loss)/d(input)`` for each requested input, where
    the implicit loss is the sum of every element of the seeded
    output(s) — i.e. each tensor output is seeded with ``ones_like``.

    ``wrt``
        Input indices to differentiate with respect to (default: every
        tensor-typed graph input, in order).  Inputs the loss does not
        reach get ``zeros_like`` gradients.
    ``out``
        Index of the single output to seed (into the forward graph's
        flattened tuple return); default seeds *all* tensor outputs.

    Raises :class:`~repro.errors.GradError` for graphs with residual
    mutations, fused/parallelized regions, ops marked
    ``differentiable=False`` on a demanded path, or ops with no VJP.
    """
    _check_supported(graph)
    bwd = clone_graph(graph, name=f"{graph.name}_grad")
    builder = GradBuilder(bwd)
    forward_nodes = list(bwd.block.nodes)
    outputs = list(bwd.outputs)
    bwd.block.clear_returns()

    elements = outputs
    if (len(outputs) == 1 and outputs[0].node is not None
            and outputs[0].node.op == "prim::TupleConstruct"):
        elements = list(outputs[0].node.inputs)
    if out is None:
        seeds = [e for e in elements if e.type.is_tensor]
        if not seeds:
            raise GradError("graph has no tensor outputs to differentiate")
    else:
        if not -len(elements) <= out < len(elements):
            raise GradError(f"out={out} is out of range for a graph with "
                            f"{len(elements)} outputs")
        seed = elements[out]
        if not seed.type.is_tensor:
            raise GradError(f"output {out} is not a tensor; only tensor "
                            "outputs can seed the adjoint sweep")
        seeds = [seed]

    adjoints: Dict[int, Value] = {}
    for e in seeds:
        builder.accumulate(adjoints, e, builder.ones_like(e))
    _backprop(builder, forward_nodes, adjoints)

    params = list(bwd.inputs)
    if wrt is None:
        wrt_idx = [i for i, p in enumerate(params) if p.type.is_tensor]
        if not wrt_idx:
            raise GradError("graph has no tensor inputs to differentiate "
                            "with respect to")
    else:
        wrt_idx = list(wrt)
        for i in wrt_idx:
            if not 0 <= i < len(params):
                raise GradError(f"wrt index {i} out of range for "
                                f"{len(params)} graph inputs")
            if not params[i].type.is_tensor:
                raise GradError(f"wrt input {i} (%{params[i].name}) is "
                                "not a tensor")
    for i in wrt_idx:
        g = adjoints.get(id(params[i]))
        bwd.add_output(g if g is not None
                       else builder.zeros_like(params[i]))
    return bwd
