"""Reverse-mode automatic differentiation over functional TensorSSA.

``repro.grad`` turns a functionalized forward graph into a plain
TensorSSA backward graph — no tape, no runtime autograd state — so the
whole existing stack (pass pipeline, memory planner, compile cache and
shape families, serve batcher) optimizes and executes gradients with
zero special cases.  See DESIGN.md §15 for the construction.

Public surface:

* :func:`grad` — graph → gradient graph (the transform itself);
* :func:`build_backward` — Python function → (forward, backward)
  TensorSSA graph pair, the convenience most callers want;
* :mod:`repro.grad.check` — the finite-difference grad-check harness
  gating all of the above;
* :class:`~repro.errors.GradError` — re-exported typed failure.

Importing this package attaches the VJP rules to the op registry.
"""

from ..errors import GradError
from . import vjp  # noqa: F401  (registers VJPs on import)
from .builder import GradBuilder, const_value, grad

__all__ = ["grad", "build_backward", "GradBuilder", "GradError",
           "const_value"]


def build_backward(fn, wrt=None, out=None, name=None):
    """Script ``fn``, functionalize it, and differentiate it.

    Returns ``(forward_graph, backward_graph)`` where the backward
    graph has the same input signature as ``fn`` and returns
    ``d(sum-of-tensor-outputs)/d(input)`` per ``wrt`` entry (default:
    every tensor input).  The forward graph comes back cleaned
    (DCE/CSE/constant-fold/canonicalize) but unfused — the
    differentiable form.
    """
    from ..frontend.script import script
    from ..ir.clone import clone_graph
    from ..passes import canonicalize, constant_fold, cse, dce
    from ..passes.pass_manager import PassManager
    from ..tensorssa.convert import convert_to_tensorssa

    fwd = script(fn).graph if not hasattr(fn, "graph") else fn.graph
    fwd = clone_graph(fwd, name=name or fwd.name)
    convert_to_tensorssa(fwd)
    (PassManager()
     .add("dce", dce)
     .add("cse", cse)
     .add("constant_fold", constant_fold)
     .add("canonicalize", canonicalize)
     .add("dce_post", dce)
     .run(fwd))
    return fwd, grad(fwd, wrt=wrt, out=out)
