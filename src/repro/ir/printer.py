"""Textual IR printer, TorchScript-dump style (cf. paper Figures 2/4).

Example output::

    graph(%b.0 : Tensor, %n.0 : int):
      %b.1 = aten::clone(%b.0)
      %b.4 = prim::Loop(%n.0, %true.0, %b.1)
        block0(%i.0 : int, %b.3 : Tensor):
          %bi.0 = immut::select(%b.3, %c0.0, %i.0)
          ...
          -> (%true.0, %b.2)
      return (%b.4)
"""

from __future__ import annotations

from typing import List

from .graph import Block, Graph, Node


def _fmt_const(value) -> str:
    if isinstance(value, str):
        return repr(value)
    if isinstance(value, (list, tuple)):
        return repr(value)
    return repr(value)


def _print_node(node: Node, lines: List[str], indent: int) -> None:
    pad = "  " * indent
    ins = ", ".join(f"%{v.name}" for v in node.inputs)
    outs = ", ".join(f"%{o.name}" for o in node.outputs)
    head = f"{outs} = " if outs else ""
    if node.op == "prim::Constant":
        lines.append(f"{pad}{head}prim::Constant"
                     f"[value={_fmt_const(node.attrs.get('value'))}]()")
        return
    lines.append(f"{pad}{head}{node.op}({ins})")
    for i, block in enumerate(node.blocks):
        params = ", ".join(f"%{p.name} : {p.type!r}" for p in block.params)
        lines.append(f"{pad}  block{i}({params}):")
        for inner in block.nodes:
            _print_node(inner, lines, indent + 2)
        rets = ", ".join(f"%{r.name}" for r in block.returns)
        lines.append(f"{pad}    -> ({rets})")


def print_block(block: Block, indent: int = 0) -> str:
    """Render a block's nodes as indented text."""
    lines: List[str] = []
    for node in block.nodes:
        _print_node(node, lines, indent)
    return "\n".join(lines)


def print_graph(graph: Graph) -> str:
    """Render a whole graph in TorchScript-dump style."""
    params = ", ".join(f"%{p.name} : {p.type!r}" for p in graph.inputs)
    lines = [f"graph {graph.name}({params}):"]
    for node in graph.block.nodes:
        _print_node(node, lines, 1)
    rets = ", ".join(f"%{r.name}" for r in graph.outputs)
    lines.append(f"  return ({rets})")
    return "\n".join(lines)
