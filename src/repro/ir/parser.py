"""Parser for the textual IR format emitted by :mod:`repro.ir.printer`.

Round-trips with the printer (``parse(print_graph(g))`` is structurally
identical to ``g``), which makes it easy to write passes tests from IR
literals instead of building graphs node by node.

Grammar (line-oriented, indentation-insensitive except block structure):

    graph NAME(%p : Type, ...):
      %out, ... = ns::op(%in, ...)
      %c = prim::Constant[value=<python literal>]()
      %outs = prim::Loop(%ins)
        block0(%params):
          ...
          -> (%returns)
      return (%outs)

Tensor-valued constants cannot be expressed textually and raise.
"""

from __future__ import annotations

import ast as pyast
import re
from typing import Dict, List, Tuple

from . import types as T
from .graph import Graph, Node, Value


class IRParseError(ValueError):
    """Raised on malformed textual IR."""
    pass


_TYPE_ATOMS = {
    "Tensor": T.TensorType, "Int": T.IntType, "Float": T.FloatType,
    "Bool": T.BoolType, "Str": T.StrType, "None": T.NoneType,
    "Any": T.AnyType,
}

_HEADER_RE = re.compile(r"^graph\s+(\S+)\((.*)\):$")
_NODE_RE = re.compile(
    r"^(?:(?P<outs>%[^=]+?)\s*=\s*)?(?P<op>[\w:]+)"
    r"(?:\[value=(?P<const>.*)\])?\((?P<ins>.*)\)$")
_BLOCK_RE = re.compile(r"^block\d+\((?P<params>.*)\):$")
_RETURNS_RE = re.compile(r"^->\s*\((?P<rets>.*)\)$")
_GRAPH_RETURN_RE = re.compile(r"^return\s*\((?P<rets>.*)\)$")


def _parse_type(text: str) -> T.Type:
    text = text.strip()
    if text.startswith("Tensor"):
        m = re.match(r"Tensor(?:<(\w+)>)?(\[[\d,\s]*\])?$", text)
        if not m:
            raise IRParseError(f"bad tensor type: {text!r}")
        dtype = m.group(1)
        shape = tuple(pyast.literal_eval(m.group(2))) if m.group(2) \
            else None
        return T.TensorType(dtype, shape)
    if text.startswith("List["):
        return T.ListType(_parse_type(text[5:-1]))
    if text.startswith("Tuple["):
        inner = text[6:-1]
        elems = [_parse_type(e) for e in _split_commas(inner)] \
            if inner else []
        return T.TupleType(elems)
    if text in _TYPE_ATOMS:
        return _TYPE_ATOMS[text]()
    raise IRParseError(f"unknown type: {text!r}")


def _split_commas(text: str) -> List[str]:
    """Split on top-level commas (respects [] and () nesting)."""
    parts, depth, start = [], 0, 0
    for i, ch in enumerate(text):
        if ch in "[(":
            depth += 1
        elif ch in "])":
            depth -= 1
        elif ch == "," and depth == 0:
            parts.append(text[start:i])
            start = i + 1
    tail = text[start:].strip()
    if tail:
        parts.append(tail)
    return [p.strip() for p in parts]


def _value_names(text: str) -> List[str]:
    names = []
    for part in _split_commas(text):
        if not part.startswith("%"):
            raise IRParseError(f"expected %value, got {part!r}")
        names.append(part[1:])
    return names


class _Parser:
    def __init__(self, text: str) -> None:
        self.lines = [ln.strip() for ln in text.strip().splitlines()
                      if ln.strip()]
        self.pos = 0
        self.values: Dict[str, Value] = {}

    def peek(self) -> str:
        return self.lines[self.pos] if self.pos < len(self.lines) else ""

    def advance(self) -> str:
        line = self.lines[self.pos]
        self.pos += 1
        return line

    def lookup(self, name: str) -> Value:
        try:
            return self.values[name]
        except KeyError:
            raise IRParseError(f"use of undefined value %{name}") from None

    def bind(self, name: str, value: Value) -> None:
        value.name = name
        self.values[name] = value

    def parse(self) -> Graph:
        header = _HEADER_RE.match(self.advance())
        if not header:
            raise IRParseError("expected `graph name(...):` header")
        graph = Graph(header.group(1))
        for param in _split_commas(header.group(2)):
            if not param:
                continue
            name_part, _, type_part = param.partition(":")
            name = name_part.strip().lstrip("%")
            value = graph.add_input(name.split(".")[0],
                                    _parse_type(type_part))
            self.bind(name, value)
        self.parse_block_body(graph.block, graph, top=True)
        return graph

    def parse_block_body(self, block, graph: Graph, top: bool) -> None:
        while self.pos < len(self.lines):
            line = self.peek()
            if top:
                m = _GRAPH_RETURN_RE.match(line)
                if m:
                    self.advance()
                    for name in _value_names(m.group("rets")) \
                            if m.group("rets").strip() else []:
                        block.add_return(self.lookup(name))
                    return
            else:
                m = _RETURNS_RE.match(line)
                if m:
                    self.advance()
                    rets = m.group("rets").strip()
                    for name in (_value_names(rets) if rets else []):
                        block.add_return(self.lookup(name))
                    return
            self.parse_node(block, graph)
        if not top:
            raise IRParseError("block without `-> (...)` terminator")

    def parse_node(self, block, graph: Graph) -> None:
        m = _NODE_RE.match(self.advance())
        if not m:
            raise IRParseError(f"cannot parse node line: "
                               f"{self.lines[self.pos - 1]!r}")
        op = m.group("op")
        node = Node(op, graph)
        if op == "prim::Constant":
            payload_text = m.group("const")
            if payload_text is None:
                raise IRParseError("prim::Constant without [value=...]")
            try:
                node.attrs["value"] = pyast.literal_eval(payload_text)
            except (SyntaxError, ValueError):
                stripped = payload_text.strip()
                dtype_match = re.match(r"repro\.(\w+)$", stripped)
                if dtype_match:
                    from ..runtime.dtype import DType
                    node.attrs["value"] = DType._registry[
                        dtype_match.group(1)]
                elif stripped in ("inf", "-inf", "nan"):
                    # repr() of non-finite floats is not a Python
                    # literal, so literal_eval refuses them
                    node.attrs["value"] = float(stripped)
                else:
                    raise IRParseError(
                        f"unsupported constant payload: {payload_text!r}"
                    ) from None
        else:
            ins = m.group("ins").strip()
            for name in (_value_names(ins) if ins else []):
                node.add_input(self.lookup(name))
        block.append(node)

        out_names = _value_names(m.group("outs")) if m.group("outs") \
            else []
        # nested blocks come before outputs are usable
        while _BLOCK_RE.match(self.peek()):
            bm = _BLOCK_RE.match(self.advance())
            inner = node.add_block()
            params = bm.group("params").strip()
            for param in (_split_commas(params) if params else []):
                name_part, _, type_part = param.partition(":")
                name = name_part.strip().lstrip("%")
                value = inner.add_param(name.split(".")[0],
                                        _parse_type(type_part))
                self.bind(name, value)
            self.parse_block_body(inner, graph, top=False)
        for name in out_names:
            if op == "prim::Constant":
                typ = T.type_of_constant(node.attrs["value"])
            else:
                typ = T.TensorType()
            value = node.add_output(name.split(".")[0], typ)
            self.bind(name, value)


def parse_graph(text: str) -> Graph:
    """Parse printer-format IR text into a Graph."""
    return _Parser(text).parse()
