"""Graph-level IR: ``Graph`` / ``Block`` / ``Node`` / ``Value``.

The structure mirrors TorchScript IR (paper §2.2): a graph owns one top
block; control flow is expressed by ``prim::If`` / ``prim::Loop`` nodes
that own nested blocks, with dependent values passed as *block
parameters* and *block returns* (functional SSA — equivalent to phi
nodes).

Conventions
-----------
``prim::Loop``       inputs ``(max_trip, init_cond, *carried)``;
                     one block with params ``(i, *carried)`` and returns
                     ``(next_cond, *carried)``; node outputs ``(*carried)``.
``prim::If``         inputs ``(cond,)``; two param-less blocks whose
                     returns match the node outputs.
``prim::FusionGroup``/``prim::ParallelMap``
                     inputs are the captured values; one block whose
                     params mirror the inputs and whose returns mirror
                     the node outputs (ParallelMap adds a leading index
                     param and a leading trip-count input).
``prim::Constant``   payload stored in ``node.attrs["value"]`` — the
                     only attribute-carrying op.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Optional, Sequence, Set, Union

from ..ops import registry
from ..ops.schema import OpKind, OpSchema
from . import types as T

__all__ = ["Graph", "Block", "Node", "Value", "Use", "bulk_destroy",
           "free_values"]


class Use:
    """One use of a Value: by a node input, or by a block's returns."""

    __slots__ = ("user", "index")

    def __init__(self, user: Union["Node", "Block"], index: int) -> None:
        self.user = user
        self.index = index

    def __repr__(self) -> str:
        kind = "ret" if isinstance(self.user, Block) else "in"
        return f"Use({kind}[{self.index}])"


class Value:
    """An SSA value: produced by a node, or a block/graph parameter."""

    __slots__ = ("name", "type", "node", "param_block", "uses")

    def __init__(self, name: str, typ: T.Type,
                 node: Optional["Node"] = None,
                 param_block: Optional["Block"] = None) -> None:
        self.name = name
        self.type = typ
        self.node = node              # producing node, if any
        self.param_block = param_block  # owning block, if a parameter
        self.uses: List[Use] = []

    @property
    def is_param(self) -> bool:
        return self.param_block is not None

    def defining_block(self) -> "Block":
        """The block in which this value becomes available."""
        if self.is_param:
            return self.param_block
        assert self.node is not None, f"dangling value {self.name}"
        return self.node.owning_block

    def replace_all_uses_with(self, other: "Value") -> None:
        for use in list(self.uses):
            if isinstance(use.user, Block):
                use.user.set_return(use.index, other)
            else:
                use.user.set_input(use.index, other)

    def __repr__(self) -> str:
        return f"%{self.name}"


class Node:
    """One operation.  Create via :meth:`Graph.create`; insert via Block."""

    def __init__(self, op: str, graph: "Graph") -> None:
        self.op = op
        self.graph = graph
        self._inputs: List[Value] = []
        self.outputs: List[Value] = []
        self.blocks: List["Block"] = []
        self.owning_block: Optional["Block"] = None
        self.attrs: Dict[str, object] = {}

    # -- schema -----------------------------------------------------------

    @property
    def schema(self) -> OpSchema:
        return registry.get(self.op)

    @property
    def kind(self) -> OpKind:
        return self.schema.kind

    # -- inputs -----------------------------------------------------------

    @property
    def inputs(self) -> Sequence[Value]:
        return tuple(self._inputs)

    def input(self, i: int) -> Value:
        return self._inputs[i]

    def add_input(self, value: Value) -> None:
        value.uses.append(Use(self, len(self._inputs)))
        self._inputs.append(value)

    def set_input(self, i: int, value: Value) -> None:
        old = self._inputs[i]
        for use in old.uses:
            if use.user is self and use.index == i:
                old.uses.remove(use)
                break
        self._inputs[i] = value
        value.uses.append(Use(self, i))

    def remove_input(self, i: int) -> None:
        old = self._inputs[i]
        for use in list(old.uses):
            if use.user is self and use.index == i:
                old.uses.remove(use)
                break
        del self._inputs[i]
        # Shift the indices of this node's remaining use records.  Each
        # Use object corresponds to exactly one input position, so a
        # plain decrement of every index past ``i`` is exact even when
        # the same value feeds several positions.
        seen = set()
        for v in self._inputs:
            if id(v) in seen:
                continue
            seen.add(id(v))
            for use in v.uses:
                if use.user is self and use.index > i:
                    use.index -= 1

    def clear_inputs(self) -> None:
        for i, v in enumerate(self._inputs):
            for use in list(v.uses):
                if use.user is self:
                    v.uses.remove(use)
        self._inputs.clear()

    # -- outputs ----------------------------------------------------------

    def add_output(self, name: str, typ: T.Type) -> Value:
        value = Value(self.graph.fresh_name(name), typ, node=self)
        self.outputs.append(value)
        return value

    def output(self, i: int = 0) -> Value:
        return self.outputs[i]

    # -- blocks -----------------------------------------------------------

    def add_block(self) -> "Block":
        block = Block(self.graph, owning_node=self)
        self.blocks.append(block)
        return block

    def block(self, i: int = 0) -> "Block":
        return self.blocks[i]

    # -- placement --------------------------------------------------------

    def destroy(self) -> None:
        """Remove this node; all outputs must be unused."""
        for out in self.outputs:
            if out.uses:
                raise RuntimeError(
                    f"destroying node {self.op} with used output {out}")
        self.clear_inputs()
        for block in self.blocks:
            block._destroy_contents()
        if self.owning_block is not None:
            self.owning_block.nodes.remove(self)
            self.owning_block = None

    def is_before(self, other: "Node") -> bool:
        """Program-order comparison within the same block."""
        assert self.owning_block is other.owning_block
        nodes = self.owning_block.nodes
        return nodes.index(self) < nodes.index(other)

    # -- iteration --------------------------------------------------------

    def walk(self) -> Iterator["Node"]:
        """This node and every node in nested blocks, pre-order."""
        yield self
        for block in self.blocks:
            for node in block.walk():
                yield node

    def __repr__(self) -> str:
        outs = ", ".join(f"%{o.name}" for o in self.outputs)
        ins = ", ".join(f"%{v.name}" for v in self._inputs)
        head = f"{outs} = " if outs else ""
        return f"{head}{self.op}({ins})"


class Block:
    """A sequence of nodes with parameters and returns."""

    def __init__(self, graph: "Graph",
                 owning_node: Optional[Node] = None) -> None:
        self.graph = graph
        self.owning_node = owning_node
        self.params: List[Value] = []
        self.nodes: List[Node] = []
        self.returns: List[Value] = []

    # -- params / returns ---------------------------------------------------

    def add_param(self, name: str, typ: T.Type) -> Value:
        value = Value(self.graph.fresh_name(name), typ, param_block=self)
        self.params.append(value)
        return value

    def insert_param(self, index: int, name: str, typ: T.Type) -> Value:
        value = Value(self.graph.fresh_name(name), typ, param_block=self)
        self.params.insert(index, value)
        return value

    def add_return(self, value: Value) -> None:
        value.uses.append(Use(self, len(self.returns)))
        self.returns.append(value)

    def set_return(self, i: int, value: Value) -> None:
        old = self.returns[i]
        for use in old.uses:
            if use.user is self and use.index == i:
                old.uses.remove(use)
                break
        self.returns[i] = value
        value.uses.append(Use(self, i))

    def clear_returns(self) -> None:
        """Drop every return (and its use records), leaving the block's
        nodes intact — the gradient pass repurposes a cloned forward
        graph by swapping its returns for adjoint outputs."""
        for i, r in enumerate(self.returns):
            for use in list(r.uses):
                if use.user is self and use.index == i:
                    r.uses.remove(use)
        self.returns.clear()

    # -- node placement -------------------------------------------------

    def append(self, node: Node) -> Node:
        assert node.owning_block is None, "node already placed"
        node.owning_block = self
        self.nodes.append(node)
        return node

    def insert(self, index: int, node: Node) -> Node:
        assert node.owning_block is None, "node already placed"
        node.owning_block = self
        self.nodes.insert(index, node)
        return node

    def insert_before(self, anchor: Node, node: Node) -> Node:
        return self.insert(self.nodes.index(anchor), node)

    def insert_after(self, anchor: Node, node: Node) -> Node:
        return self.insert(self.nodes.index(anchor) + 1, node)

    def remove(self, node: Node) -> None:
        """Detach (without destroying) a node from this block."""
        self.nodes.remove(node)
        node.owning_block = None

    def _destroy_contents(self) -> None:
        # Drop the return-slot use records first: returns may reference
        # values defined in *outer* scopes (an untaken If branch
        # returning a parent value), and those outlive this block.
        for i, r in enumerate(self.returns):
            for use in list(r.uses):
                if use.user is self and use.index == i:
                    r.uses.remove(use)
        self.returns.clear()
        for node in list(reversed(self.nodes)):
            for out in node.outputs:
                out.uses.clear()
            node.clear_inputs()
            for b in node.blocks:
                b._destroy_contents()
        self.nodes.clear()

    # -- navigation -------------------------------------------------------

    def walk(self) -> Iterator[Node]:
        """All nodes in this block and nested blocks, pre-order."""
        for node in self.nodes:
            for n in node.walk():
                yield n

    def ancestors(self) -> Iterator["Block"]:
        """This block, then each enclosing block up to the graph top."""
        block: Optional[Block] = self
        while block is not None:
            yield block
            node = block.owning_node
            block = node.owning_block if node is not None else None

    def contains(self, other: "Block") -> bool:
        return any(b is self for b in other.ancestors())

    def __repr__(self) -> str:
        return (f"Block(params={[p.name for p in self.params]}, "
                f"nodes={len(self.nodes)}, "
                f"returns={[r.name for r in self.returns]})")


def free_values(block: "Block") -> List["Value"]:
    """Values the block references but does not define, in first-use
    order.  Derived on demand wherever horizontal-loop captures are
    needed (compilation, interpretation, liveness, revert protection):
    a snapshot stored in ``attrs`` would go stale as soon as a later
    pass rewrote a captured value (fusion, CSE) or the graph was cloned.
    """
    local = {id(p) for p in block.params}
    for node in block.nodes:
        for out in node.outputs:
            local.add(id(out))
    free: List[Value] = []
    seen: Set[int] = set()

    def visit(v: Value) -> None:
        if id(v) in local or id(v) in seen:
            return
        seen.add(id(v))
        free.append(v)

    for node in block.nodes:
        for v in node.inputs:
            visit(v)
    for r in block.returns:
        visit(r)
    return free


def bulk_destroy(nodes: Sequence["Node"]) -> None:
    """Destroy many (use-free) nodes at once.

    Equivalent to calling :meth:`Node.destroy` on each, but O(total)
    instead of O(total x block size): use-lists are filtered once per
    touched value and block node lists are rebuilt once per block.
    """
    removed = {id(n) for n in nodes}
    touched: Dict[int, Value] = {}
    blocks: Dict[int, Block] = {}
    for node in nodes:
        for out in node.outputs:
            if any(not (isinstance(u.user, Node) and id(u.user) in removed)
                   for u in out.uses):
                raise RuntimeError(
                    f"bulk_destroy: node {node.op} output %{out.name} "
                    f"still has live uses")
        for v in node._inputs:
            touched[id(v)] = v
        if node.owning_block is not None:
            blocks[id(node.owning_block)] = node.owning_block
        for inner_block in node.blocks:
            for inner in inner_block.walk():
                removed.add(id(inner))
                for v in inner._inputs:
                    touched[id(v)] = v
    for v in touched.values():
        v.uses = [u for u in v.uses
                  if not (isinstance(u.user, Node) and id(u.user) in removed)]
    for node in nodes:
        node._inputs.clear()
        node.owning_block = None
    for block in blocks.values():
        block.nodes = [n for n in block.nodes if id(n) not in removed]


class Graph:
    """A function: a top-level block plus value-name bookkeeping."""

    def __init__(self, name: str = "graph") -> None:
        self.name = name
        self.block = Block(self, owning_node=None)
        self._name_counts: Dict[str, itertools.count] = {}

    # -- naming -----------------------------------------------------------

    def fresh_name(self, base: str) -> str:
        base = base.split(".")[0] or "v"
        counter = self._name_counts.setdefault(base, itertools.count())
        return f"{base}.{next(counter)}"

    # -- parameters / returns ---------------------------------------------

    @property
    def inputs(self) -> Sequence[Value]:
        return tuple(self.block.params)

    @property
    def outputs(self) -> Sequence[Value]:
        return tuple(self.block.returns)

    def add_input(self, name: str, typ: T.Type) -> Value:
        return self.block.add_param(name, typ)

    def add_output(self, value: Value) -> None:
        self.block.add_return(value)

    # -- node construction --------------------------------------------------

    def create(self, op: str, inputs: Sequence[Value] = (),
               output_names: Sequence[str] = (),
               output_types: Sequence[T.Type] = ()) -> Node:
        """Create a detached node (caller inserts it into a block)."""
        registry.get(op)  # validate op exists
        node = Node(op, self)
        for v in inputs:
            node.add_input(v)
        for name, typ in zip(output_names, output_types):
            node.add_output(name, typ)
        return node

    def constant(self, value, name: str = "c") -> Node:
        """Create a detached ``prim::Constant`` carrying ``value``."""
        node = Node("prim::Constant", self)
        node.attrs["value"] = value
        node.add_output(name, T.type_of_constant(value))
        return node

    # -- iteration ----------------------------------------------------------

    def walk(self) -> Iterator[Node]:
        return self.block.walk()

    def nodes_of(self, *ops: str) -> List[Node]:
        return [n for n in self.walk() if n.op in ops]

    # -- debugging ------------------------------------------------------

    def __repr__(self) -> str:
        from .printer import print_graph
        return print_graph(self)
