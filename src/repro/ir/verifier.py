"""IR structural verifier.

Run after every pass in debug/test mode: catches dangling values,
scope violations, use-list corruption, and malformed control-flow
conventions long before they surface as wrong numerics.
"""

from __future__ import annotations

from typing import Set

from ..ops import registry as ops
from ..ops.schema import OpKind
from .graph import Block, Graph, Node, Value


class VerificationError(AssertionError):
    """Raised by :func:`verify` on structural IR violations."""
    pass


def _fail(msg: str) -> None:
    raise VerificationError(msg)


def _check_uses(value: Value) -> None:
    for use in value.uses:
        if isinstance(use.user, Block):
            if use.index >= len(use.user.returns) or \
                    use.user.returns[use.index] is not value:
                _fail(f"use-list of %{value.name} names a block return "
                      f"slot that does not reference it")
        else:
            node = use.user
            if use.index >= len(node.inputs) or \
                    node.inputs[use.index] is not value:
                _fail(f"use-list of %{value.name} names input "
                      f"{use.index} of {node.op}, which holds something else")


def _verify_block(block: Block, in_scope: Set[int]) -> None:
    scope = set(in_scope)
    for p in block.params:
        if p.param_block is not block:
            _fail(f"param %{p.name} does not point back to its block")
        _check_uses(p)
        scope.add(id(p))
    for node in block.nodes:
        if node.owning_block is not block:
            _fail(f"node {node.op} owning_block backref is wrong")
        for i, v in enumerate(node.inputs):
            if id(v) not in scope:
                _fail(f"node {node.op} input {i} (%{v.name}) is not in "
                      f"scope (defined later, or in a sibling block)")
            if not any(u.user is node and u.index == i for u in v.uses):
                _fail(f"%{v.name} lacks a use record for {node.op} "
                      f"input {i}")
        _verify_conventions(node)
        for inner in node.blocks:
            if inner.owning_node is not node:
                _fail(f"block of {node.op} has wrong owning_node")
            _verify_block(inner, scope)
        for out in node.outputs:
            if out.node is not node:
                _fail(f"output %{out.name} does not point back to {node.op}")
            _check_uses(out)
            scope.add(id(out))
    for i, r in enumerate(block.returns):
        if id(r) not in scope:
            _fail(f"block return {i} (%{r.name}) is not in scope")
        if not any(u.user is block and u.index == i for u in r.uses):
            _fail(f"%{r.name} lacks a use record for block return {i}")


def _verify_conventions(node: Node) -> None:
    if node.op == "prim::Loop":
        if len(node.blocks) != 1:
            _fail("prim::Loop must own exactly one block")
        body = node.blocks[0]
        n_carried = len(node.inputs) - 2
        if n_carried < 0:
            _fail("prim::Loop needs (max_trip, init_cond, *carried) inputs")
        if len(body.params) != n_carried + 1:
            _fail(f"prim::Loop body must have 1+{n_carried} params, "
                  f"has {len(body.params)}")
        if len(body.returns) != n_carried + 1:
            _fail(f"prim::Loop body must return 1+{n_carried} values, "
                  f"returns {len(body.returns)}")
        if len(node.outputs) != n_carried:
            _fail("prim::Loop outputs must match carried values")
    elif node.op == "prim::If":
        if len(node.blocks) != 2:
            _fail("prim::If must own exactly two blocks")
        if len(node.inputs) != 1:
            _fail("prim::If takes exactly one input (the condition)")
        for b in node.blocks:
            if b.params:
                _fail("prim::If blocks take no params")
            if len(b.returns) != len(node.outputs):
                _fail(f"prim::If block returns {len(b.returns)} values, "
                      f"node has {len(node.outputs)} outputs")
    elif node.op == "prim::FusionGroup":
        if len(node.blocks) != 1:
            _fail("prim::FusionGroup must own exactly one block")
        body = node.blocks[0]
        if len(body.params) != len(node.inputs):
            _fail("FusionGroup params must mirror node inputs")
        if len(body.returns) != len(node.outputs):
            _fail("FusionGroup returns must mirror node outputs")
    elif node.op == "prim::ParallelMap":
        if len(node.blocks) != 1:
            _fail("prim::ParallelMap must own exactly one block")
        body = node.blocks[0]
        if len(body.params) != len(node.inputs):
            # (index, *captures) vs (trip_count, *captures)
            _fail("ParallelMap params must be (i, *captures) matching "
                  "(trip_count, *captures) inputs")
        if len(body.returns) != len(node.outputs):
            _fail("ParallelMap returns must mirror node outputs")
    elif node.op == "prim::Constant":
        if "value" not in node.attrs:
            _fail("prim::Constant without a value attribute")
    elif node.op == "tssa::update":
        if len(node.inputs) != 2 or node.outputs:
            _fail("tssa::update must be update(new, old) with no outputs")


def verify(graph: Graph) -> Graph:
    """Check structural invariants; returns the graph for chaining."""
    _verify_block(graph.block, set())
    return graph


# -- mutation conventions --------------------------------------------------

def _alias_root(value: Value) -> Value:
    """Storage owner of ``value``: input 0 followed through VIEW and
    MUTATING producers (both alias their first operand)."""
    seen = set()
    while value.node is not None and id(value) not in seen:
        seen.add(id(value))
        node = value.node
        if not ops.has(node.op):
            break
        if node.kind in (OpKind.VIEW, OpKind.MUTATING) and node.inputs:
            value = node.input(0)
        else:
            break
    return value


def _locally_owned(root: Value, mutation: Node) -> bool:
    """Revert discipline (passes/revert.py): a reintroduced mutation may
    only write a buffer owned by a PURE node (or a FusionGroup) in the
    mutation's own block — storage whose every other reader was proven
    to run earlier, so the side effect cannot escape.

    One structured exception, the loop-carried in-place discipline
    (``revert_carried_assigns``): the root may be a ``prim::Loop``
    body's carried param when the slot flows through unchanged (the
    body returns the param itself — the signature of a reverted carried
    chain) and the slot's init value is itself a locally-owned buffer
    whose only reader is the loop."""
    node = root.node
    if node is None:
        if root.is_param:
            return _carried_in_place(root, mutation)
        return False
    if node.op == "prim::Constant":
        return False
    if node.kind is OpKind.CONTROL and node.op != "prim::FusionGroup":
        return False  # If/Loop outputs alias values we have not analyzed
    if node.kind not in (OpKind.PURE, OpKind.CONTROL):
        return False
    return root.defining_block() is mutation.owning_block


def _carried_in_place(root: Value, mutation: Node) -> bool:
    """Is ``root`` a carried Loop param mutated under the in-place
    carried-slot convention (see :func:`_locally_owned`)?"""
    body = root.param_block
    loop = body.owning_node if body is not None else None
    if loop is None or loop.op != "prim::Loop":
        return False
    if mutation.owning_block is not body:
        return False
    try:
        k = body.params.index(root) - 1  # params are (i, *carried)
    except ValueError:
        return False
    if k < 0 or k >= len(loop.outputs):
        return False
    if body.returns[1 + k] is not root:
        return False  # slot does not flow through unchanged
    init = loop.input(2 + k)
    if len(init.uses) != 1 or init.uses[0].user is not loop:
        return False
    return _locally_owned(init, loop)


def verify_mutations(graph: Graph, strict: bool = False) -> Graph:
    """Check the TensorSSA mutation conventions on an executable graph.

    Always enforced:

    * ``tssa::update`` annotations must not survive to execution — the
      interpreter has no semantics for them;
    * no ``immut::`` op may alias or write its input: the whole point
      of the Access/Assign operator sets (paper §3.2) is that they are
      pure, so a registry/pass regression demoting one to VIEW or
      MUTATING is a conventions break;
    * a MUTATING op must never write through to a ``prim::Constant``
      buffer (folded constants are shared across the graph).

    With ``strict=True`` — appropriate once a pipeline reports full
    functionalization (``skipped_mutations == 0``) — every surviving
    MUTATING op must be one the revert pass could have introduced: its
    alias root is a locally-owned buffer (see :func:`_locally_owned`).
    Mutations of graph inputs, block params, loop-carried values, or
    buffers from an enclosing block have no business in a graph that
    claims to be fully functionalized.
    """
    for node in graph.walk():
        if node.op == "tssa::update":
            _fail("tssa::update survived to an executable graph; run the "
                  "rename/cleanup step of the TensorSSA conversion")
        if node.op.startswith("immut::"):
            if not ops.has(node.op):
                _fail(f"unregistered immut:: op {node.op}")
            if node.kind in (OpKind.VIEW, OpKind.MUTATING):
                _fail(f"{node.op} is registered as {node.kind.value}: "
                      f"immut:: ops must be pure (no aliasing, no writes)")
        if ops.has(node.op) and node.kind is OpKind.MUTATING:
            if not node.inputs:
                _fail(f"mutating op {node.op} with no write target")
            root = _alias_root(node.input(0))
            if root.node is not None and root.node.op == "prim::Constant":
                _fail(f"{node.op} writes through %{node.input(0).name} "
                      f"into constant %{root.name}")
            if strict and not _locally_owned(root, node):
                _fail(f"{node.op} on %{node.input(0).name} mutates "
                      f"%{root.name}, which is not a locally-owned "
                      f"buffer: a fully functionalized graph may only "
                      f"keep revert-style mutations of single-consumer "
                      f"pure outputs in the same block")
    return graph
