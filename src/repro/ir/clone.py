"""Deep-cloning of graphs and blocks (pipelines transform private copies)."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .graph import Block, Graph, Node, Value

__all__ = ["clone_graph", "clone_region"]


def _clone_node(node: Node, into: Block, graph: Graph,
                vmap: Dict[int, Value]) -> Node:
    new = Node(node.op, graph)
    new.attrs = dict(node.attrs)
    for v in node.inputs:
        new.add_input(vmap[id(v)])
    for out in node.outputs:
        new_out = new.add_output(out.name.split(".")[0], out.type)
        vmap[id(out)] = new_out
    into.append(new)
    for block in node.blocks:
        new_block = new.add_block()
        _clone_block_contents(block, new_block, graph, vmap)
    return new


def _clone_block_contents(src: Block, dst: Block, graph: Graph,
                          vmap: Dict[int, Value]) -> None:
    for p in src.params:
        vmap[id(p)] = dst.add_param(p.name.split(".")[0], p.type)
    for node in src.nodes:
        _clone_node(node, dst, graph, vmap)
    for r in src.returns:
        dst.add_return(vmap[id(r)])


def clone_region(src: Block, dst: Block, graph: Graph,
                 vmap: Dict[int, Value]
                 ) -> Tuple[List[Value], List[Node]]:
    """Clone ``src``'s *nodes* into ``dst`` without touching params or
    returns — the primitive the gradient pass uses to re-materialize a
    forward region inside an adjoint block.

    ``vmap`` must be pre-seeded for every value the region references
    but does not define (params, captured outer values) — typically
    mapped to replacement values in the destination scope, or to
    themselves when the capture stays visible.  Returns the values
    ``src``'s returns map to plus the top-level cloned nodes, so the
    caller can seed return adjoints and sweep the clone in reverse.
    """
    cloned = [_clone_node(node, dst, graph, vmap) for node in src.nodes]
    return [vmap[id(r)] for r in src.returns], cloned


def clone_graph(graph: Graph,
                name: Optional[str] = None) -> Graph:
    """A structurally identical deep copy with fresh Values."""
    new = Graph(name or graph.name)
    vmap: Dict[int, Value] = {}
    _clone_block_contents(graph.block, new.block, new, vmap)
    return new
