"""Deep-cloning of graphs and blocks (pipelines transform private copies)."""

from __future__ import annotations

from typing import Dict, Optional

from .graph import Block, Graph, Node, Value


def _clone_node(node: Node, into: Block, graph: Graph,
                vmap: Dict[int, Value]) -> Node:
    new = Node(node.op, graph)
    new.attrs = dict(node.attrs)
    for v in node.inputs:
        new.add_input(vmap[id(v)])
    for out in node.outputs:
        new_out = new.add_output(out.name.split(".")[0], out.type)
        vmap[id(out)] = new_out
    into.append(new)
    for block in node.blocks:
        new_block = new.add_block()
        _clone_block_contents(block, new_block, graph, vmap)
    return new


def _clone_block_contents(src: Block, dst: Block, graph: Graph,
                          vmap: Dict[int, Value]) -> None:
    for p in src.params:
        vmap[id(p)] = dst.add_param(p.name.split(".")[0], p.type)
    for node in src.nodes:
        _clone_node(node, dst, graph, vmap)
    for r in src.returns:
        dst.add_return(vmap[id(r)])


def clone_graph(graph: Graph,
                name: Optional[str] = None) -> Graph:
    """A structurally identical deep copy with fresh Values."""
    new = Graph(name or graph.name)
    vmap: Dict[int, Value] = {}
    _clone_block_contents(graph.block, new.block, new, vmap)
    return new
