"""IR type system.

Deliberately coarse: the backend JIT-specializes kernels on *runtime*
shapes (as NNC does), so static shapes are optional refinements, not
requirements.  Types matter mainly to the frontend (scalar-vs-tensor
op selection) and the verifier.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple


class Type:
    """Base class; subclasses are value-equal and hashable."""

    def __eq__(self, other) -> bool:
        return type(self) is type(other) and self.__dict__ == other.__dict__

    def __hash__(self) -> int:
        return hash((type(self).__name__, tuple(sorted(self.__dict__.items(),
                                                       key=lambda kv: kv[0],
                                                       ))))

    def __repr__(self) -> str:
        return self.__class__.__name__.replace("Type", "")

    @property
    def is_tensor(self) -> bool:
        return isinstance(self, TensorType)

    @property
    def is_scalar(self) -> bool:
        return isinstance(self, (IntType, FloatType, BoolType))


class TensorType(Type):
    """A tensor, with optional dtype/shape refinement."""

    def __init__(self, dtype: Optional[str] = None,
                 shape: Optional[Tuple[int, ...]] = None) -> None:
        self.dtype = dtype
        self.shape = tuple(shape) if shape is not None else None

    def __repr__(self) -> str:
        bits = "Tensor"
        if self.dtype:
            bits += f"<{self.dtype}>"
        if self.shape is not None:
            bits += f"{list(self.shape)}"
        return bits

    def __hash__(self) -> int:
        return hash(("TensorType", self.dtype, self.shape))


class IntType(Type):
    """A Python/host integer."""
    pass


class FloatType(Type):
    """A Python/host float."""
    pass


class BoolType(Type):
    """A Python/host boolean."""
    pass


class StrType(Type):
    """A host string (also used for dtype constants)."""
    pass


class NoneType(Type):
    """The None constant's type."""
    pass


class AnyType(Type):
    """Unrefined type (containers of unknown element types, unpacked values)."""
    pass


class ListType(Type):
    """A list with an optional element-type refinement."""
    def __init__(self, elem: Optional[Type] = None) -> None:
        self.elem = elem or AnyType()

    def __repr__(self) -> str:
        return f"List[{self.elem!r}]"

    def __hash__(self) -> int:
        return hash(("ListType", self.elem))


class TupleType(Type):
    """A fixed-arity tuple of element types."""
    def __init__(self, elems: Sequence[Type] = ()) -> None:
        self.elems = tuple(elems)

    def __repr__(self) -> str:
        return f"Tuple[{', '.join(map(repr, self.elems))}]"

    def __hash__(self) -> int:
        return hash(("TupleType", self.elems))


def type_of_constant(value) -> Type:
    """Infer the IR type of a Python constant payload."""
    if value is None:
        return NoneType()
    if isinstance(value, bool):
        return BoolType()
    if isinstance(value, int):
        return IntType()
    if isinstance(value, float):
        return FloatType()
    if isinstance(value, str):
        return StrType()
    if isinstance(value, (list, tuple)):
        elem = type_of_constant(value[0]) if value else AnyType()
        return ListType(elem) if isinstance(value, list) else TupleType(
            tuple(type_of_constant(v) for v in value))
    from ..runtime.dtype import DType
    from ..runtime.tensor import Tensor
    if isinstance(value, Tensor):
        return TensorType(value.dtype.name, value.shape)
    if isinstance(value, DType):
        return StrType()
    raise TypeError(f"unsupported constant payload: {value!r}")
