"""repro.ir — the TorchScript-like graph-level IR."""

from . import types
from .clone import clone_graph
from .graph import Block, Graph, Node, Use, Value, bulk_destroy
from .parser import IRParseError, parse_graph
from .printer import print_block, print_graph
from .verifier import VerificationError, verify, verify_mutations

__all__ = ["types", "Graph", "Block", "Node", "Value", "Use", "bulk_destroy", "parse_graph", "IRParseError",
           "print_graph", "print_block", "verify", "VerificationError",
           "verify_mutations", "clone_graph"]
