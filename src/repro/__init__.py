"""TensorSSA reproduction: holistic functionalization of imperative
tensor programs (DAC 2024).

Public surface:

* :mod:`repro.runtime`   -- imperative tensor substrate (views, mutation).
* :mod:`repro.frontend`  -- ``script()``: Python AST -> graph-level IR.
* :mod:`repro.tensorssa` -- the TensorSSA conversion (paper Algorithm 1).
* :mod:`repro.pipelines` -- eager + 4 compiler pipelines (ours & baselines).
* :mod:`repro.models`    -- the eight paper workloads.
* :mod:`repro.eval`      -- figure/table harness (Figs. 5-8).
"""

__version__ = "0.1.0"

from . import runtime

__all__ = ["runtime", "__version__"]
