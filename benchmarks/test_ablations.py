"""Ablations over TensorSSA's design choices (DESIGN.md §5).

Quantifies each ingredient of the paper's §4:

* vertical fusion only (no horizontal parallelization),
* horizontal only (no vertical fusion),
* data-flow-only functionalization (intra-block, what tracing
  compilers achieve) — isolating the value of *holistic* conversion.
"""

import pytest

import repro.runtime as rt
from repro.eval.harness import clone_args
from repro.eval.platforms import DATACENTER
from repro.models import get_workload
from repro.pipelines import TensorSSAPipeline

VARIANTS = {
    "full": dict(),
    "no_horizontal": dict(horizontal=False),
    "no_vertical": dict(vertical=False),
    "intra_block": dict(intra_block_only=True),
}


def _modeled_latency(workload: str, **pipeline_kwargs) -> float:
    wl = get_workload(workload)
    pipe = TensorSSAPipeline(name="tensorssa_ablation", **pipeline_kwargs)
    args = wl.make_inputs(batch_size=1, seq_len=32)
    compiled = pipe.compile(wl.model_fn)
    with rt.profile() as prof:
        compiled(*clone_args(args))
    return DATACENTER.latency_us(prof, pipe.host_profile)


class TestAblations:
    @pytest.mark.parametrize("workload", ["ssd", "attention"])
    def test_horizontal_matters_for_parallel_loops(self, workload):
        full = _modeled_latency(workload)
        no_h = _modeled_latency(workload, horizontal=False)
        assert full < no_h, (workload, full, no_h)

    @pytest.mark.parametrize("workload", ["lstm", "nasrnn"])
    def test_vertical_matters_for_rnn_cells(self, workload):
        full = _modeled_latency(workload)
        no_v = _modeled_latency(workload, vertical=False)
        assert full < no_v, (workload, full, no_v)

    @pytest.mark.parametrize("workload", ["lstm", "attention", "yolov3"])
    def test_holistic_beats_intra_block(self, workload):
        """The paper's core claim: crossing control-flow boundaries
        (block propagation) buys real performance over data-flow-only
        functionalization."""
        full = _modeled_latency(workload)
        intra = _modeled_latency(workload, intra_block_only=True)
        assert full < intra, (workload, full, intra)

    @pytest.mark.parametrize("workload", ["ssd", "lstm"])
    def test_every_variant_is_correct(self, workload):
        import numpy as np
        wl = get_workload(workload)
        args = wl.make_inputs(batch_size=1, seq_len=16)
        expected = wl.model_fn(*clone_args(args))
        expected = expected if isinstance(expected, tuple) else (expected,)
        for name, kwargs in VARIANTS.items():
            pipe = TensorSSAPipeline(name=f"ablate_{name}", **kwargs)
            compiled = pipe.compile(wl.model_fn)
            got = compiled(*clone_args(args))
            got = got if isinstance(got, tuple) else (got,)
            for g, e in zip(got, expected):
                np.testing.assert_allclose(
                    g.numpy().astype(float), e.numpy().astype(float),
                    rtol=1e-4, atol=1e-5,
                    err_msg=f"{workload}/{name}")


@pytest.mark.parametrize("variant", list(VARIANTS))
def test_ablation_wallclock(benchmark, variant):
    benchmark.group = "ablation:lstm"
    benchmark.extra_info["variant"] = variant
    wl = get_workload("lstm")
    pipe = TensorSSAPipeline(name=f"bench_{variant}", **VARIANTS[variant])
    args = wl.make_inputs(batch_size=1, seq_len=32)
    compiled = pipe.compile(wl.model_fn)
    compiled(*clone_args(args))
    benchmark(lambda: compiled(*clone_args(args)))
