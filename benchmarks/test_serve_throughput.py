"""Serving-layer throughput: dynamic batching vs one-at-a-time.

The serving claim mirrors the paper's horizontal-parallelization
argument (§4.2.2, §5) applied across users: coalescing compatible
requests along the batch axis amortizes graph interpretation and
kernel launches, so request throughput must beat batch-size-1 serving.
These are wall-clock measurements through the real ``repro.serve``
stack (queues, workers, scatter) — the same path serve_bench drives,
at a smaller scale so the suite stays quick.
"""

from __future__ import annotations

import pytest

from repro.models import get_workload
from repro.serve import ServePolicy
from repro.tools.serve_bench import build_request_args, run_load

REQUESTS = 48
CONCURRENCY = 8
SEQ_LEN = 16


def _serve(workload: str, max_batch: int):
    wl = get_workload(workload)
    pool = build_request_args(wl, SEQ_LEN, count=16)
    policy = ServePolicy(workers=4, max_batch_size=max_batch,
                         batch_wait_s=0.004, verify="batch")
    return run_load(wl, pool, policy, REQUESTS, CONCURRENCY,
                    pipeline="tensorssa", platform="datacenter",
                    warmup=max_batch * 2)


@pytest.mark.parametrize("workload", ["lstm", "attention"])
def test_batched_serving_beats_serial(workload):
    batched = _serve(workload, max_batch=8)
    baseline = _serve(workload, max_batch=1)
    assert batched["dropped"] == 0 and baseline["dropped"] == 0
    assert batched["diverged"] == 0 and baseline["diverged"] == 0
    # wall-clock throughput with a healthy margin below serve_bench's
    # observed 2.0-3.3x so scheduler jitter cannot flake the suite
    assert (batched["throughput_rps"]
            >= 1.3 * baseline["throughput_rps"]), (
        f"{workload}: batched {batched['throughput_rps']:.0f} req/s "
        f"vs baseline {baseline['throughput_rps']:.0f} req/s")
    assert batched["mean_batch_requests"] > 1.5
