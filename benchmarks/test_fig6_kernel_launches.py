"""Figure 6 — kernel launch counts per pipeline and workload.

The central mechanism claim: functionalization lets fusion collapse the
launch count.  Assertions follow the paper's observations, including the
§5.3 nuance that TensorSSA's counts need not beat TorchInductor's on
every NLP task (it wins on time through control-flow and layout, not
always on count).
"""

import pytest

from conftest import BENCH_SIZES, PIPELINES, launches_of
from repro.eval.harness import run_workload
from repro.models import WORKLOADS

WORKLOAD_NAMES = list(WORKLOADS)


@pytest.fixture(scope="module")
def launch_table():
    return {w: {p: launches_of(w, p) for p in PIPELINES}
            for w in WORKLOAD_NAMES}


class TestFig6:
    def test_tensorssa_launches_fewest_or_ties_inductor(self, launch_table):
        for w, row in launch_table.items():
            others = [row[p] for p in ("ts_nnc", "ts_nvfuser")]
            assert row["tensorssa"] < min(others), (w, row)
            assert row["tensorssa"] <= row["dynamo_inductor"], (w, row)

    def test_everything_beats_eager(self, launch_table):
        for w, row in launch_table.items():
            for p in PIPELINES[1:]:
                assert row[p] <= row["eager"], (w, p, row)

    def test_nnc_at_most_nvfuser(self, launch_table):
        # NNC's broader fusable set cannot do worse than nvFuser's
        for w, row in launch_table.items():
            assert row["ts_nnc"] <= row["ts_nvfuser"], (w, row)

    @pytest.mark.parametrize("workload", ["ssd", "attention"])
    def test_horizontal_collapses_loop_launches(self, workload):
        """A loop that parallelizes horizontally costs ~1 launch no
        matter the trip count."""
        small = run_workload(workload, "tensorssa", seq_len=16,
                             **{k: v for k, v in BENCH_SIZES.items()
                                if k != "seq_len"})
        large = run_workload(workload, "tensorssa", seq_len=64,
                             **{k: v for k, v in BENCH_SIZES.items()
                                if k != "seq_len"})
        assert large.kernel_launches == small.kernel_launches

    def test_eager_launch_counts_scale_with_seq(self):
        small = run_workload("lstm", "eager", seq_len=16)
        large = run_workload("lstm", "eager", seq_len=64)
        assert large.kernel_launches > 3 * small.kernel_launches
