"""Figure 8 — latency across sequence lengths (NLP + Attention).

Paper shapes: TensorSSA's latency grows linearly with sequence length
and stays below every baseline at every length; the tracing baseline
degrades sharply once the loop exceeds its unrolling budget (the graph
breaks the paper's §5.3 attributes Dynamo's overhead to).
"""

import pytest

from repro.eval.harness import clone_args, run_workload
from repro.models import get_workload
from repro.pipelines import get_pipeline

WORKLOADS = ["nasrnn", "lstm", "seq2seq", "attention"]
SEQ_LENS = (16, 64, 128)


def _latency(workload: str, pipeline: str, seq_len: int) -> float:
    return run_workload(workload, pipeline, seq_len=seq_len).latency_us


class TestFig8Shape:
    @pytest.mark.parametrize("workload", WORKLOADS)
    def test_ours_fastest_at_every_length(self, workload):
        for sl in SEQ_LENS:
            ours = _latency(workload, "tensorssa", sl)
            for baseline in ("ts_nnc", "ts_nvfuser", "dynamo_inductor"):
                assert ours <= _latency(workload, baseline, sl) * 1.01, (
                    workload, baseline, sl)

    @pytest.mark.parametrize("workload", ["nasrnn", "lstm", "seq2seq"])
    def test_linear_growth(self, workload):
        """Latency at 128 should be roughly 2x the latency at 64 —
        linear time growth (paper: 'exhibits linear time growth')."""
        t64 = _latency(workload, "tensorssa", 64)
        t128 = _latency(workload, "tensorssa", 128)
        assert 1.5 <= t128 / t64 <= 3.0, (workload, t128 / t64)

    def test_dynamo_unroll_budget_crossover(self):
        """Past the unroll budget the tracing pipeline pays per-iteration
        graph breaks: its latency ratio to ours must worsen."""
        ratio_small = (_latency("lstm", "dynamo_inductor", 16)
                       / _latency("lstm", "tensorssa", 16))
        ratio_large = (_latency("lstm", "dynamo_inductor", 128)
                       / _latency("lstm", "tensorssa", 128))
        assert ratio_large > ratio_small


@pytest.mark.parametrize("seq_len", SEQ_LENS)
@pytest.mark.parametrize("workload", ["lstm", "attention"])
def test_fig8_wallclock(benchmark, workload, seq_len):
    benchmark.group = f"fig8:{workload}"
    benchmark.extra_info["seq_len"] = seq_len
    wl = get_workload(workload)
    pipe = get_pipeline("tensorssa")
    args = wl.make_inputs(batch_size=1, seq_len=seq_len)
    compiled = pipe.compile(wl.model_fn, example_args=args)
    compiled(*clone_args(args))
    benchmark(lambda: compiled(*clone_args(args)))
