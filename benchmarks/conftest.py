"""Shared benchmark fixtures and helpers.

Two kinds of measurements live here:

* **wall-clock** (pytest-benchmark) — real execution time of each
  pipeline on the simulated runtime; fusion genuinely removes Python
  dispatch, so relative ordering is meaningful;
* **modeled** — the deterministic analytical cost model used to
  regenerate the paper's figures; shape assertions (who wins, how the
  curves bend) run against this.
"""

from __future__ import annotations

import pytest

import repro.runtime as rt
from repro.eval.harness import clear_compile_cache, clone_args, run_workload
from repro.models import WORKLOADS, get_workload
from repro.pipelines import get_pipeline

#: smaller-than-default shapes so wall-clock benches stay quick
BENCH_SIZES = {"batch_size": 1, "seq_len": 32}

PIPELINES = ["eager", "dynamo_inductor", "ts_nvfuser", "ts_nnc",
             "tensorssa"]
BASELINES = ["dynamo_inductor", "ts_nvfuser", "ts_nnc"]


@pytest.fixture(scope="session")
def modeled_fig5():
    """Speedups over eager for every workload x pipeline (datacenter)."""
    grid = {}
    for name in WORKLOADS:
        eager = run_workload(name, "eager", **BENCH_SIZES)
        grid[name] = {}
        for pipe in PIPELINES[1:]:
            res = run_workload(name, pipe, **BENCH_SIZES)
            grid[name][pipe] = eager.latency_us / res.latency_us
    return grid


def compiled_runner(workload_name: str, pipeline_name: str):
    """A zero-arg callable executing one inference (compile excluded)."""
    wl = get_workload(workload_name)
    pipe = get_pipeline(pipeline_name)
    args = wl.make_inputs(**BENCH_SIZES)
    compiled = pipe.compile(wl.model_fn, example_args=args)

    def run():
        return compiled(*clone_args(args))

    run()  # warm the kernel caches outside the timed region
    return run


@pytest.fixture(autouse=True, scope="module")
def _fresh_cache():
    clear_compile_cache()
    yield


def launches_of(workload_name: str, pipeline_name: str) -> int:
    return run_workload(workload_name, pipeline_name,
                        **BENCH_SIZES).kernel_launches


__all__ = ["BENCH_SIZES", "PIPELINES", "BASELINES", "compiled_runner",
           "launches_of", "rt"]
