"""Figure 5 — end-to-end inference performance, all pipelines.

Wall-clock rows (pytest-benchmark) plus shape assertions against the
modeled speedups: TensorSSA beats every baseline on every workload, and
NLP workloads gain at least as much as the CV median (paper §5.2).
"""

import pytest

from conftest import BASELINES, PIPELINES, compiled_runner
from repro.models import WORKLOADS

WORKLOAD_NAMES = list(WORKLOADS)


@pytest.mark.parametrize("workload", WORKLOAD_NAMES)
@pytest.mark.parametrize("pipeline", PIPELINES)
def test_fig5_wallclock(benchmark, workload, pipeline):
    benchmark.group = f"fig5:{workload}"
    benchmark.extra_info["pipeline"] = pipeline
    run = compiled_runner(workload, pipeline)
    benchmark(run)


class TestFig5Shape:
    def test_tensorssa_beats_every_baseline(self, modeled_fig5):
        for workload, speedups in modeled_fig5.items():
            ours = speedups["tensorssa"]
            for baseline in BASELINES:
                assert ours >= speedups[baseline] * 0.99, (
                    f"{workload}: tensorssa {ours:.2f}x vs "
                    f"{baseline} {speedups[baseline]:.2f}x")

    def test_tensorssa_speeds_up_all_workloads(self, modeled_fig5):
        for workload, speedups in modeled_fig5.items():
            assert speedups["tensorssa"] > 1.0, \
                f"{workload} got no speedup over eager"

    def test_headline_band(self, modeled_fig5):
        """§5.2: 'up to 1.79x (1.34x on average)' over the best
        baseline — our simulated band must at least reach that."""
        ratios = []
        for speedups in modeled_fig5.values():
            best = max(speedups[b] for b in BASELINES)
            ratios.append(speedups["tensorssa"] / best)
        assert max(ratios) >= 1.3
        geomean = 1.0
        for r in ratios:
            geomean *= r
        geomean **= 1.0 / len(ratios)
        assert geomean >= 1.1

    def test_mutation_free_after_conversion(self):
        from repro.pipelines import TensorSSAPipeline
        for name, wl in WORKLOADS.items():
            compiled = TensorSSAPipeline().compile(wl.model_fn)
            inner_mutations = [
                n.op for n in compiled.graph.walk()
                if n.schema.is_mutating
                and n.owning_block is not compiled.graph.block]
            assert not inner_mutations, (name, inner_mutations)
