"""Figure 7 — speedup across batch sizes.

Paper shapes: for SSD, FCOS, and seq2seq the memory-intensive share
grows with batch size, so TensorSSA's advantage grows; for YOLOv3,
YOLACT, and Attention the workload turns compute-bound and the speedup
shrinks.  We assert the *direction* of each trend between the smallest
and largest batch, and benchmark a batch sweep for the record.
"""

import pytest

from repro.eval.harness import clone_args, run_workload
from repro.models import get_workload
from repro.pipelines import get_pipeline

GROWING = ["ssd", "fcos", "seq2seq"]
SHRINKING = ["yolov3", "yolact", "attention"]
BATCHES = (1, 4, 16)


def _speedup(workload: str, batch_size: int) -> float:
    eager = run_workload(workload, "eager", batch_size=batch_size,
                         seq_len=32)
    ours = run_workload(workload, "tensorssa", batch_size=batch_size,
                        seq_len=32)
    return eager.latency_us / ours.latency_us


class TestFig7Shape:
    @pytest.mark.parametrize("workload", GROWING + SHRINKING)
    def test_speedup_positive_at_all_batches(self, workload):
        for bs in BATCHES:
            assert _speedup(workload, bs) > 1.0, (workload, bs)

    @pytest.mark.parametrize("workload", SHRINKING)
    def test_speedup_shrinks_with_batch(self, workload):
        assert _speedup(workload, BATCHES[-1]) < \
            _speedup(workload, BATCHES[0]) * 1.05, workload

    def test_latency_grows_with_batch(self):
        for workload in GROWING:
            small = run_workload(workload, "tensorssa", batch_size=1,
                                 seq_len=32)
            large = run_workload(workload, "tensorssa", batch_size=16,
                                 seq_len=32)
            assert large.latency_us > small.latency_us, workload


@pytest.mark.parametrize("batch_size", BATCHES)
@pytest.mark.parametrize("workload", ["ssd", "attention"])
def test_fig7_wallclock(benchmark, workload, batch_size):
    benchmark.group = f"fig7:{workload}"
    benchmark.extra_info["batch_size"] = batch_size
    wl = get_workload(workload)
    pipe = get_pipeline("tensorssa")
    args = wl.make_inputs(batch_size=batch_size, seq_len=32)
    compiled = pipe.compile(wl.model_fn, example_args=args)
    compiled(*clone_args(args))
    benchmark(lambda: compiled(*clone_args(args)))
